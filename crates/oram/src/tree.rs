//! A single Path ORAM tree: buckets, stash, path read/write, eviction.
//!
//! [`TreeOram`] implements the mechanics of one tree. Position management
//! lives *outside* (in [`crate::RecursivePathOram`] or the caller): every
//! access is told which leaf the block is currently mapped to and which
//! leaf it is being remapped to, mirroring how a hardware controller's
//! datapath is driven by the position-map lookup pipeline.
//!
//! Buckets are lazily materialized: an untouched bucket is all dummies and
//! costs no host memory, so paper-scale trees (2^25 leaves) are cheap to
//! instantiate.

use crate::bucket::{Bucket, StoredBlock};
use crate::geometry::{PathTable, TreeGeometry};
use crate::stash::Stash;
use crate::types::{BlockId, Leaf, NodeIndex};
use otc_crypto::Prf;
use std::collections::HashMap;

/// Synthesizes the payload of a block that has never been written.
///
/// * The data ORAM returns zeroed cache lines (fresh memory).
/// * Recursive position-map ORAMs return PRF-derived default positions, so
///   the position map is lazily materializable (see `DESIGN.md` §3).
#[derive(Clone)]
pub enum DefaultPayload {
    /// All-zero payload of the tree's block size.
    Zeros,
    /// Position-map default: entry `j` of block `b` is
    /// `PRF(b * entries + j) mod child_leaf_count`, encoded little-endian
    /// as fixed-width `u32`s.
    PosmapPrf {
        /// PRF used to derive default child positions.
        prf: Prf,
        /// Number of position entries packed per block.
        entries_per_block: usize,
        /// Leaf count of the ORAM whose positions this map stores.
        child_leaf_count: u64,
    },
}

impl std::fmt::Debug for DefaultPayload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DefaultPayload::Zeros => write!(f, "DefaultPayload::Zeros"),
            DefaultPayload::PosmapPrf {
                entries_per_block,
                child_leaf_count,
                ..
            } => write!(
                f,
                "DefaultPayload::PosmapPrf {{ entries_per_block: {entries_per_block}, \
                 child_leaf_count: {child_leaf_count} }}"
            ),
        }
    }
}

impl DefaultPayload {
    fn synthesize(&self, id: BlockId, block_bytes: usize) -> Vec<u8> {
        match self {
            DefaultPayload::Zeros => vec![0u8; block_bytes],
            DefaultPayload::PosmapPrf {
                prf,
                entries_per_block,
                child_leaf_count,
            } => {
                let mut out = vec![0u8; block_bytes];
                for j in 0..*entries_per_block {
                    let idx = id.0 * *entries_per_block as u64 + j as u64;
                    let pos = prf.eval_below(idx, *child_leaf_count) as u32;
                    out[j * 4..j * 4 + 4].copy_from_slice(&pos.to_le_bytes());
                }
                out
            }
        }
    }
}

/// Statistics for one tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Path accesses performed (real + dummy).
    pub path_accesses: u64,
    /// Bytes moved through the pins by this tree (read + write).
    pub bytes_moved: u64,
    /// Peak stash occupancy.
    pub stash_peak: usize,
}

/// Tree levels held in the dense top-of-tree array. Every access
/// rewrites its path's top levels, so these buckets are hot on *every*
/// access and (for any realistic access count) all materialize anyway;
/// storing them as a flat heap-indexed array turns the hottest
/// `DENSE_LEVELS` of every path read/write into direct indexing with no
/// hashing and no probing. 2^14 − 1 buckets ≈ 0.5 MB per tree — the
/// on-chip tree-top buffer of the Ren et al. [26] controller designs,
/// in host-memory form.
const DENSE_LEVELS: u32 = 14;

/// Fast node-index hasher for the deep (sparse) bucket map.
///
/// Bucket keys are heap indices — structured, dense-per-level integers —
/// and the map is probed ~2 x levels times per access, so SipHash is
/// pure overhead here (there is no attacker-controlled key material:
/// node indices derive from PRNG-drawn leaves). A SplitMix64-style
/// finalizer mixes all 64 bits into the low bits hashbrown indexes by.
#[derive(Clone, Copy, Default)]
struct NodeIndexHasher(u64);

impl std::hash::Hasher for NodeIndexHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[derive(Clone, Copy, Default)]
struct BuildNodeIndexHasher;

impl std::hash::BuildHasher for BuildNodeIndexHasher {
    type Hasher = NodeIndexHasher;

    fn build_hasher(&self) -> NodeIndexHasher {
        NodeIndexHasher::default()
    }
}

/// One Path ORAM tree.
pub struct TreeOram {
    geom: TreeGeometry,
    /// Per-level path-node constants, computed once per geometry — the
    /// path read/write hot loops index this instead of re-deriving
    /// bucket indices per access.
    path: PathTable,
    /// Top [`DENSE_LEVELS`] levels, heap-indexed (`node.0` directly):
    /// the tree-top buffer. Always allocated, `encryption_counter == 0`
    /// means "never written" exactly like absence from the sparse map.
    dense: Vec<Bucket>,
    /// Buckets below the dense levels, lazily materialized on first
    /// write — an untouched deep bucket is all dummies and costs no
    /// host memory, so paper-scale trees stay cheap to instantiate.
    buckets: HashMap<NodeIndex, Bucket, BuildNodeIndexHasher>,
    stash: Stash,
    /// Per-level eviction scratch (root first), recycled across
    /// accesses: the single-pass stash eviction fills these, then each
    /// vector's contents move into the corresponding path bucket.
    evict_scratch: Vec<Vec<StoredBlock>>,
    default_payload: DefaultPayload,
    /// Fingerprint PRF: models what ciphertext an adversary would see for
    /// a bucket (changes on every write-back).
    fingerprint_prf: Prf,
    accesses: u64,
}

impl std::fmt::Debug for TreeOram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TreeOram")
            .field("geom", &self.geom)
            .field("materialized_buckets", &self.materialized_buckets())
            .field("stash_len", &self.stash.len())
            .field("accesses", &self.accesses)
            .finish()
    }
}

impl TreeOram {
    /// Creates an empty tree.
    pub fn new(geom: TreeGeometry, default_payload: DefaultPayload, fingerprint_prf: Prf) -> Self {
        Self {
            geom,
            path: geom.path_table(),
            dense: {
                let levels = geom.levels().min(DENSE_LEVELS);
                vec![Bucket::empty(); ((1u64 << levels) - 1) as usize]
            },
            buckets: HashMap::default(),
            stash: Stash::new(),
            evict_scratch: Vec::new(),
            default_payload,
            fingerprint_prf,
            accesses: 0,
        }
    }

    /// The tree's geometry.
    pub fn geometry(&self) -> &TreeGeometry {
        &self.geom
    }

    /// Performs one real access.
    ///
    /// Reads the path to `leaf` into the stash, applies `update` to the
    /// payload of `id` (synthesizing a default payload if the block was
    /// never written), remaps the block to `new_leaf`, then evicts and
    /// writes the path back. Returns the payload *after* `update` ran.
    ///
    /// # Panics
    ///
    /// Panics if `leaf`/`new_leaf` are out of range, or if the invariant
    /// "the block is on the claimed path or in the stash" is violated —
    /// which would mean the caller's position map is inconsistent.
    pub fn access_update<F>(
        &mut self,
        id: BlockId,
        leaf: Leaf,
        new_leaf: Leaf,
        update: F,
    ) -> Vec<u8>
    where
        F: FnOnce(&mut Vec<u8>),
    {
        let result = self.access_update_deferred(id, leaf, new_leaf, update);
        // The deferred variant just emptied the path's buckets, so the
        // immediate write-back is exactly the serial eviction.
        self.write_path_from_stash(leaf);
        result
    }

    /// Convenience read (no modification).
    pub fn read(&mut self, id: BlockId, leaf: Leaf, new_leaf: Leaf) -> Vec<u8> {
        self.access_update(id, leaf, new_leaf, |_| {})
    }

    /// Convenience write (payload replaced).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly `block_bytes` long.
    pub fn write(&mut self, id: BlockId, leaf: Leaf, new_leaf: Leaf, data: &[u8]) -> Vec<u8> {
        assert_eq!(
            data.len(),
            self.geom.block_bytes(),
            "payload must be block-sized"
        );
        self.access_update(id, leaf, new_leaf, |p| p.copy_from_slice(data))
    }

    /// Performs a dummy access: read and write back the path to `leaf`
    /// without touching any logical block (§1.1.2 footnote 1, §3).
    /// Indistinguishable from a real access by construction — the same
    /// bytes move and every bucket is re-encrypted.
    pub fn dummy_access(&mut self, leaf: Leaf) {
        self.dummy_access_deferred(leaf);
        self.write_path_from_stash(leaf);
    }

    /// As [`TreeOram::access_update`], but with the path write-back
    /// *deferred*: the path's blocks stay in the stash and the caller
    /// must later call [`TreeOram::evict_path`] with the same `leaf` to
    /// complete the eviction. Until then the Path ORAM invariant still
    /// holds (stash residency is always legal) and reads of any staged
    /// block keep working — only the write-back bandwidth and the
    /// re-encryption of the path's buckets are postponed.
    pub fn access_update_deferred<F>(
        &mut self,
        id: BlockId,
        leaf: Leaf,
        new_leaf: Leaf,
        update: F,
    ) -> Vec<u8>
    where
        F: FnOnce(&mut Vec<u8>),
    {
        self.access_update_deferred_quiet(id, leaf, new_leaf, update);
        self.stash
            .get(id)
            .expect("block staged in stash")
            .payload
            .clone()
    }

    /// As [`TreeOram::access_update_deferred`], but without materializing
    /// a copy of the updated payload. The serving datapath discards the
    /// result of most accesses (every posmap hop, every write, every
    /// host-level read whose payload nobody consumes), so the quiet
    /// variants keep the per-access hot path allocation-free; callers
    /// that do want the payload read it through `update` or use the
    /// cloning wrappers.
    pub fn access_update_deferred_quiet<F>(
        &mut self,
        id: BlockId,
        leaf: Leaf,
        new_leaf: Leaf,
        update: F,
    ) where
        F: FnOnce(&mut Vec<u8>),
    {
        assert!(new_leaf.0 < self.geom.leaf_count(), "new_leaf out of range");
        self.read_path_into_stash(leaf);

        // The block must now be in the stash: either it came off the path,
        // it was already waiting in the stash, or it has never been
        // written and we synthesize it.
        if !self.stash.contains(id) {
            let payload = self.default_payload.synthesize(id, self.geom.block_bytes());
            self.stash.insert(StoredBlock { id, leaf, payload });
        }

        let block = self.stash.get_mut(id).expect("block staged in stash");
        block.leaf = new_leaf;
        update(&mut block.payload);
        self.accesses += 1;
    }

    /// Quiet counterpart of [`TreeOram::access_update`]: full access
    /// (read path, update, immediate write-back) with no payload copy.
    pub fn access_update_quiet<F>(&mut self, id: BlockId, leaf: Leaf, new_leaf: Leaf, update: F)
    where
        F: FnOnce(&mut Vec<u8>),
    {
        self.access_update_deferred_quiet(id, leaf, new_leaf, update);
        self.write_path_from_stash(leaf);
    }

    /// Dummy-access counterpart of [`TreeOram::access_update_deferred`]:
    /// reads the path to `leaf` into the stash and leaves the write-back
    /// to a later [`TreeOram::evict_path`].
    pub fn dummy_access_deferred(&mut self, leaf: Leaf) {
        self.read_path_into_stash(leaf);
        self.accesses += 1;
    }

    /// Completes a deferred eviction: gathers the current contents of the
    /// path to `leaf` back into the stash (interleaved earlier evictions
    /// may have re-filled shared buckets — the root is on every path) and
    /// writes the path back with greedy eviction. Exactly one bucket
    /// re-encryption per path bucket, the same as the write-back half of
    /// a serial access, so ciphertext fingerprints after all pending
    /// evictions drain match serial mode bit for bit.
    ///
    /// Timing-model note: the gather is *functional bookkeeping*, not
    /// modeled DRAM traffic — callers charge a drain the path-write cost
    /// only ([`crate::AccessPlan::eviction`]). The buckets a drain can
    /// find non-empty are exactly the path prefix shared with an earlier
    /// pending eviction (deeper buckets were emptied by this path's own
    /// read and FIFO order keeps them empty), and a hardware controller
    /// holds those top-of-tree levels in its on-chip tree-top buffer
    /// (standard in the Ren et al. [26] designs this models), so the
    /// write-back re-reads nothing from DRAM. Worst case outside the
    /// buffered depth — two pending paths to nearby leaves — the model
    /// is optimistic by the shared suffix; bytes_moved accounting is
    /// unaffected (each access still moves read + write once).
    pub fn evict_path(&mut self, leaf: Leaf) {
        self.read_path_into_stash(leaf);
        self.write_path_from_stash(leaf);
    }

    /// The ciphertext fingerprint of a bucket, as an adversary snapshotting
    /// DRAM would see it (§3.2). Changes on every write-back because
    /// buckets are re-encrypted probabilistically.
    pub fn bucket_fingerprint(&self, node: NodeIndex) -> u64 {
        let counter = if (node.0 as usize) < self.dense.len() {
            self.dense[node.0 as usize].encryption_counter
        } else {
            self.buckets
                .get(&node)
                .map(|b| b.encryption_counter)
                .unwrap_or(0)
        };
        self.fingerprint_prf.eval2(node.0, counter)
    }

    /// Fingerprint of the root bucket (§3.2's probe target: the root is on
    /// *every* path, so it is rewritten by *every* access).
    pub fn root_fingerprint(&self) -> u64 {
        self.bucket_fingerprint(self.geom.root())
    }

    /// Current stash occupancy.
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TreeStats {
        TreeStats {
            path_accesses: self.accesses,
            bytes_moved: self.accesses * 2 * self.geom.path_bytes(),
            stash_peak: self.stash.peak(),
        }
    }

    /// Number of buckets that have ever been written (host-memory
    /// footprint diagnostic). Dense tree-top buckets are pre-allocated,
    /// so "written" there means a non-zero encryption counter — exactly
    /// the condition under which the sparse map used to materialize an
    /// entry.
    pub fn materialized_buckets(&self) -> usize {
        let dense_written = self
            .dense
            .iter()
            .filter(|b| b.encryption_counter > 0)
            .count();
        dense_written + self.buckets.len()
    }

    fn read_path_into_stash(&mut self, leaf: Leaf) {
        self.path.assert_leaf(leaf);
        let dense_levels = self.dense_levels();
        for level in 0..dense_levels {
            let node = self.path.node_at(leaf, level);
            // Drain in place: the bucket keeps its block vector's
            // allocation for the write-back half of the access.
            for block in self.dense[node.0 as usize].blocks.drain(..) {
                self.stash.insert(block);
            }
        }
        for level in dense_levels..self.path.levels() {
            let node = self.path.node_at(leaf, level);
            if let Some(bucket) = self.buckets.get_mut(&node) {
                for block in bucket.blocks.drain(..) {
                    self.stash.insert(block);
                }
            }
        }
    }

    /// How many of this tree's levels live in the dense top array.
    #[inline]
    fn dense_levels(&self) -> usize {
        self.geom.levels().min(DENSE_LEVELS) as usize
    }

    fn write_path_from_stash(&mut self, leaf: Leaf) {
        // Evict greedily from the leaf upward: deeper placements free more
        // stash space and are strictly harder to satisfy, so fill them
        // first (standard Path ORAM eviction). The whole path is filled
        // in ONE id-ordered stash pass — placements provably identical
        // to the per-bucket reference scan (see
        // [`Stash::evict_path_into`]) at O(stash + levels) instead of
        // O(stash x levels) per access.
        let geom = self.geom;
        let levels = self.path.levels();
        if self.evict_scratch.len() != levels {
            self.evict_scratch.resize_with(levels, Vec::new);
        }
        self.stash.evict_path_into(
            geom.z(),
            |block_leaf| geom.deepest_shared_level(leaf, block_leaf) as usize,
            &mut self.evict_scratch,
        );
        let dense_levels = self.dense_levels();
        for level in (0..levels).rev() {
            let node = self.path.node_at(leaf, level);
            let bucket = if level < dense_levels {
                &mut self.dense[node.0 as usize]
            } else {
                self.buckets.entry(node).or_insert_with(Bucket::empty)
            };
            debug_assert!(bucket.blocks.is_empty(), "path was read before write");
            bucket.blocks.append(&mut self.evict_scratch[level]);
            // Probabilistic re-encryption of every bucket on the path.
            bucket.encryption_counter += 1;
        }
    }

    /// Verifies the Path ORAM invariant for every materialized block:
    /// a block mapped to leaf `l` must lie on the path to `l` (or in the
    /// stash). Returns the number of blocks checked.
    ///
    /// # Panics
    ///
    /// Panics (with a diagnostic) if the invariant is violated. Intended
    /// for tests and debug assertions, not production paths.
    pub fn check_invariant(&self) -> usize {
        let mut checked = 0;
        let dense = self
            .dense
            .iter()
            .enumerate()
            .map(|(i, b)| (NodeIndex(i as u64), b));
        for (node, bucket) in dense.chain(self.buckets.iter().map(|(n, b)| (*n, b))) {
            assert!(
                bucket.blocks.len() <= self.geom.z(),
                "bucket {node:?} over capacity"
            );
            for block in &bucket.blocks {
                let on_path = self.geom.path_nodes(block.leaf).any(|n| n == node);
                assert!(
                    on_path,
                    "block {} mapped to {} stored off-path at node {:?}",
                    block.id, block.leaf, node
                );
                checked += 1;
            }
        }
        checked + self.stash.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otc_crypto::{Prf, SymmetricKey};
    use proptest::prelude::*;

    fn test_tree(levels: u32) -> TreeOram {
        let key = SymmetricKey::from_seed(1234);
        TreeOram::new(
            TreeGeometry::new(levels, 3, 64, 16),
            DefaultPayload::Zeros,
            Prf::new(key, b"fingerprint"),
        )
    }

    /// Deterministic "random" leaf sequence for tests.
    fn leaf_seq(geom: &TreeGeometry, seed: u64) -> impl FnMut() -> Leaf + '_ {
        let mut rng = otc_crypto::SplitMix64::new(seed);
        move || Leaf(rng.next_below(geom.leaf_count()))
    }

    #[test]
    fn fresh_block_reads_zero() {
        let mut t = test_tree(4);
        let data = t.read(BlockId(5), Leaf(2), Leaf(3));
        assert_eq!(data, vec![0u8; 64]);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut t = test_tree(4);
        let payload = vec![0xAB; 64];
        t.write(BlockId(7), Leaf(1), Leaf(4), &payload);
        // Must read via the *new* leaf.
        let got = t.read(BlockId(7), Leaf(4), Leaf(0));
        assert_eq!(got, payload);
        t.check_invariant();
    }

    #[test]
    fn root_fingerprint_changes_every_access() {
        let mut t = test_tree(4);
        let f0 = t.root_fingerprint();
        t.dummy_access(Leaf(0));
        let f1 = t.root_fingerprint();
        t.dummy_access(Leaf(7));
        let f2 = t.root_fingerprint();
        assert_ne!(f0, f1);
        assert_ne!(f1, f2);
    }

    #[test]
    fn off_path_bucket_fingerprint_stable() {
        let mut t = test_tree(4);
        // Access leaf 0 repeatedly; the leaf-level bucket of leaf 7 is
        // never on that path, so its ciphertext never changes.
        let node7 = t.geometry().node_at(Leaf(7), 3);
        let before = t.bucket_fingerprint(node7);
        for _ in 0..5 {
            t.dummy_access(Leaf(0));
        }
        assert_eq!(t.bucket_fingerprint(node7), before);
    }

    #[test]
    fn dummy_access_preserves_contents() {
        let mut t = test_tree(4);
        t.write(BlockId(3), Leaf(6), Leaf(6), &[9u8; 64]);
        for leaf in 0..8 {
            t.dummy_access(Leaf(leaf));
        }
        assert_eq!(t.read(BlockId(3), Leaf(6), Leaf(1)), vec![9u8; 64]);
        t.check_invariant();
    }

    #[test]
    fn access_counts_and_bytes() {
        let mut t = test_tree(4);
        t.dummy_access(Leaf(0));
        t.read(BlockId(0), Leaf(0), Leaf(0));
        let s = t.stats();
        assert_eq!(s.path_accesses, 2);
        assert_eq!(s.bytes_moved, 2 * 2 * t.geometry().path_bytes());
    }

    #[test]
    fn posmap_default_payload_is_prf_derived() {
        let key = SymmetricKey::from_seed(9);
        let prf = Prf::new(key, b"posmap");
        let dp = DefaultPayload::PosmapPrf {
            prf,
            entries_per_block: 8,
            child_leaf_count: 16,
        };
        let payload = dp.synthesize(BlockId(2), 32);
        for j in 0..8usize {
            let v = u32::from_le_bytes(payload[j * 4..j * 4 + 4].try_into().expect("4 bytes"));
            assert_eq!(u64::from(v), prf.eval_below(2 * 8 + j as u64, 16));
            assert!(u64::from(v) < 16);
        }
    }

    #[test]
    fn paper_scale_tree_is_cheap_to_instantiate() {
        // 26 levels = 2^26-1 buckets; lazy materialization means only the
        // touched paths cost memory.
        let mut t = test_tree(26);
        let geom = *t.geometry();
        let (l, l2) = {
            let mut next = leaf_seq(&geom, 42);
            (next(), next())
        };
        assert!(l.0 < geom.leaf_count());
        t.write(BlockId(123_456), l, l2, &[1u8; 64]);
        assert!(t.materialized_buckets() <= 26);
    }

    #[test]
    #[should_panic(expected = "payload must be block-sized")]
    fn wrong_payload_size_panics() {
        test_tree(4).write(BlockId(0), Leaf(0), Leaf(0), &[1, 2, 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Read-your-writes under random interleavings, with the invariant
        /// checked continuously and the stash staying bounded.
        #[test]
        fn prop_read_your_writes(seed in any::<u64>(), ops in 1usize..60) {
            let mut t = test_tree(5); // 16 leaves
            let geom = *t.geometry();
            let mut rng = otc_crypto::SplitMix64::new(seed);
            // Model of truth: block id -> (expected payload, current leaf).
            let mut model: std::collections::HashMap<u64, (Vec<u8>, Leaf)> =
                std::collections::HashMap::new();
            for step in 0..ops {
                let id = rng.next_below(12); // ≤ 12 distinct blocks in 16-leaf tree
                let new_leaf = Leaf(rng.next_below(geom.leaf_count()));
                let entry = model.get(&id).cloned();
                let cur_leaf = entry
                    .as_ref()
                    .map(|(_, l)| *l)
                    .unwrap_or(Leaf(rng.next_below(geom.leaf_count())));
                if rng.next_below(2) == 0 {
                    // write
                    let payload = vec![(step as u8).wrapping_mul(31); 64];
                    t.write(BlockId(id), cur_leaf, new_leaf, &payload);
                    model.insert(id, (payload, new_leaf));
                } else {
                    // read
                    let got = t.read(BlockId(id), cur_leaf, new_leaf);
                    if let Some((expect, _)) = entry {
                        prop_assert_eq!(&got, &expect);
                    } else {
                        prop_assert_eq!(&got, &vec![0u8; 64]);
                    }
                    model
                        .entry(id)
                        .and_modify(|e| e.1 = new_leaf)
                        .or_insert((vec![0u8; 64], new_leaf));
                }
                t.check_invariant();
                prop_assert!(t.stash_len() <= 40, "stash grew to {}", t.stash_len());
            }
        }
    }
}
