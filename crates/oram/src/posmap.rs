//! Sparse, lazily-materialized leaf maps.
//!
//! The final level of the recursive position map lives on-chip (§3, [26]).
//! For host-memory efficiency we store it sparsely: an entry that was
//! never remapped defaults to a PRF of the block id, which is
//! distributionally equivalent to the uniformly random initial assignment
//! the protocol specifies (and deterministic, so whole simulations replay
//! bit-for-bit).

use crate::types::{BlockId, Leaf};
use otc_crypto::Prf;
use std::collections::HashMap;

/// A map `BlockId -> Leaf` with PRF-derived defaults.
#[derive(Debug, Clone)]
pub struct SparseLeafMap {
    prf: Prf,
    leaf_count: u64,
    overrides: HashMap<BlockId, Leaf>,
}

impl SparseLeafMap {
    /// Creates a map whose defaults are `PRF(id) mod leaf_count`.
    ///
    /// # Panics
    ///
    /// Panics if `leaf_count == 0`.
    pub fn new(prf: Prf, leaf_count: u64) -> Self {
        assert!(leaf_count > 0, "leaf_count must be positive");
        Self {
            prf,
            leaf_count,
            overrides: HashMap::new(),
        }
    }

    /// Current leaf for `id`.
    pub fn get(&self, id: BlockId) -> Leaf {
        self.overrides
            .get(&id)
            .copied()
            .unwrap_or_else(|| Leaf(self.prf.eval_below(id.0, self.leaf_count)))
    }

    /// Remaps `id` to `leaf`, returning the previous mapping.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn set(&mut self, id: BlockId, leaf: Leaf) -> Leaf {
        assert!(leaf.0 < self.leaf_count, "leaf out of range");
        let old = self.get(id);
        self.overrides.insert(id, leaf);
        old
    }

    /// Number of entries that have ever been remapped (host-memory
    /// diagnostic).
    pub fn materialized_entries(&self) -> usize {
        self.overrides.len()
    }

    /// The number of leaves in the target tree.
    pub fn leaf_count(&self) -> u64 {
        self.leaf_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otc_crypto::SymmetricKey;
    use proptest::prelude::*;

    fn map(leaves: u64) -> SparseLeafMap {
        SparseLeafMap::new(Prf::new(SymmetricKey::from_seed(3), b"pm"), leaves)
    }

    #[test]
    fn defaults_are_deterministic_and_in_range() {
        let m1 = map(16);
        let m2 = map(16);
        for i in 0..100 {
            let l = m1.get(BlockId(i));
            assert_eq!(l, m2.get(BlockId(i)));
            assert!(l.0 < 16);
        }
        assert_eq!(m1.materialized_entries(), 0);
    }

    #[test]
    fn set_overrides_and_returns_old() {
        let mut m = map(16);
        let default = m.get(BlockId(5));
        let old = m.set(BlockId(5), Leaf(3));
        assert_eq!(old, default);
        assert_eq!(m.get(BlockId(5)), Leaf(3));
        assert_eq!(m.materialized_entries(), 1);
    }

    #[test]
    #[should_panic(expected = "leaf out of range")]
    fn set_out_of_range_panics() {
        map(8).set(BlockId(0), Leaf(8));
    }

    proptest! {
        #[test]
        fn prop_get_after_set(id in any::<u64>(), leaf in 0u64..32) {
            let mut m = map(32);
            m.set(BlockId(id), Leaf(leaf));
            prop_assert_eq!(m.get(BlockId(id)), Leaf(leaf));
        }

        #[test]
        fn prop_defaults_roughly_uniform(offset in any::<u64>()) {
            // Over 1024 consecutive ids, every one of 8 leaves should
            // receive a plausible share of defaults.
            let m = map(8);
            let mut counts = [0u32; 8];
            for i in 0..1024u64 {
                counts[m.get(BlockId(offset.wrapping_add(i))).0 as usize] += 1;
            }
            for &c in &counts {
                prop_assert!(c >= 64, "leaf got only {} of 1024", c);
            }
        }
    }
}
