//! Binary-tree geometry for one Path ORAM.

use crate::types::{Leaf, NodeIndex};

/// Geometry of a single ORAM tree: a complete binary tree of buckets.
///
/// Terminology: a tree of *height* `h` has `h + 1` levels (root = level 0,
/// leaves = level `h`) and `2^h` leaves. The paper's default data ORAM in
/// this reproduction has 26 levels (height 25, 2^25 leaves); see
/// [`crate::OramConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeGeometry {
    levels: u32,
    z: usize,
    block_bytes: usize,
    header_bytes: usize,
}

impl TreeGeometry {
    /// Creates a geometry with `levels` levels, `z` block slots per
    /// bucket, `block_bytes` per block and `header_bytes` of per-bucket
    /// metadata (IV/counter).
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`, `levels > 40`, or `z == 0`.
    pub fn new(levels: u32, z: usize, block_bytes: usize, header_bytes: usize) -> Self {
        assert!(
            levels > 0 && levels <= 40,
            "unreasonable level count {levels}"
        );
        assert!(z > 0, "bucket capacity must be positive");
        Self {
            levels,
            z,
            block_bytes,
            header_bytes,
        }
    }

    /// Number of levels (root through leaf, inclusive).
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Tree height (= levels − 1).
    pub fn height(&self) -> u32 {
        self.levels - 1
    }

    /// Blocks per bucket (the paper's `Z`; 3 for all ORAMs, §9.1.2).
    pub fn z(&self) -> usize {
        self.z
    }

    /// Payload bytes per block.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// Per-bucket header bytes (nonce/IV for probabilistic encryption).
    pub fn header_bytes(&self) -> usize {
        self.header_bytes
    }

    /// Number of leaves (`2^height`).
    pub fn leaf_count(&self) -> u64 {
        1u64 << self.height()
    }

    /// Total buckets in the tree (`2^levels − 1`).
    pub fn bucket_count(&self) -> u64 {
        (1u64 << self.levels) - 1
    }

    /// Bytes of one bucket as stored in DRAM (header + Z blocks, dummies
    /// included — buckets are padded to fixed size, §3).
    pub fn bucket_bytes(&self) -> u64 {
        (self.header_bytes + self.z * self.block_bytes) as u64
    }

    /// Bytes moved to read (or write) one full path.
    pub fn path_bytes(&self) -> u64 {
        self.levels as u64 * self.bucket_bytes()
    }

    /// Total DRAM footprint of the tree.
    pub fn total_bytes(&self) -> u64 {
        self.bucket_count() * self.bucket_bytes()
    }

    /// Node index of the bucket at `level` on the path to `leaf`.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` or `level` is out of range.
    pub fn node_at(&self, leaf: Leaf, level: u32) -> NodeIndex {
        assert!(leaf.0 < self.leaf_count(), "leaf {leaf} out of range");
        assert!(level < self.levels, "level {level} out of range");
        // The path from root to leaf follows the bits of the leaf label
        // from most significant (just below the root) to least.
        // Node at `level` has heap index: (2^level - 1) + (leaf >> (height - level)).
        let prefix = leaf.0 >> (self.height() - level);
        NodeIndex(((1u64 << level) - 1) + prefix)
    }

    /// The node indices along the path from root to `leaf`
    /// (root first).
    pub fn path_nodes(&self, leaf: Leaf) -> impl Iterator<Item = NodeIndex> + '_ {
        (0..self.levels).map(move |lvl| self.node_at(leaf, lvl))
    }

    /// The root bucket's node index (probed by the §3.2 adversary).
    pub fn root(&self) -> NodeIndex {
        NodeIndex(0)
    }

    /// Whether the bucket at `level` on the path to `a` is also on the
    /// path to `b` — i.e. the two paths have not yet diverged at `level`.
    ///
    /// Used by eviction: a stash block mapped to leaf `b` may be placed in
    /// the path-to-`a` bucket at `level` iff this returns `true`.
    pub fn paths_share_level(&self, a: Leaf, b: Leaf, level: u32) -> bool {
        let shift = self.height() - level;
        if shift >= 64 {
            return true; // both prefixes are empty at the root
        }
        (a.0 >> shift) == (b.0 >> shift)
    }

    /// The deepest level at which the paths to `a` and `b` still share a
    /// bucket — the common-prefix length of the two leaf labels. Eviction
    /// legality is prefix-closed ([`TreeGeometry::paths_share_level`]
    /// holds exactly for levels `0..=deepest`), so one XOR replaces a
    /// per-level predicate scan in the eviction hot loop.
    pub fn deepest_shared_level(&self, a: Leaf, b: Leaf) -> u32 {
        // Bits where the labels still differ after shifting; the paths
        // share level `l` iff `height - l` kills every differing bit.
        let sig = 64 - (a.0 ^ b.0).leading_zeros();
        debug_assert!(
            sig <= self.height(),
            "leaves {a}/{b} out of range for height {}",
            self.height()
        );
        self.height().saturating_sub(sig)
    }

    /// Precomputed per-level path-node table for this geometry.
    pub fn path_table(&self) -> PathTable {
        PathTable::new(self)
    }
}

/// Precomputed per-level path-node index table for one geometry.
///
/// The bucket index at `level` on the path to `leaf` is pure arithmetic
/// on the leaf label — `(2^level − 1) + (leaf >> (height − level))` —
/// so the per-level base/shift constants are computed once per tree and
/// the per-access hot path ([`crate::TreeOram`]'s path read/write) does
/// a table lookup instead of re-deriving (and re-asserting) them for
/// every bucket of every access.
#[derive(Debug, Clone)]
pub struct PathTable {
    leaf_count: u64,
    /// `(2^level − 1, height − level)` per level, root first.
    rows: Vec<(u64, u32)>,
}

impl PathTable {
    /// Builds the table for `geom` (one row per level).
    pub fn new(geom: &TreeGeometry) -> Self {
        Self {
            leaf_count: geom.leaf_count(),
            rows: (0..geom.levels())
                .map(|lvl| ((1u64 << lvl) - 1, geom.height() - lvl))
                .collect(),
        }
    }

    /// Number of levels (rows).
    pub fn levels(&self) -> usize {
        self.rows.len()
    }

    /// Node index at `level` on the path to `leaf`. The leaf bound is
    /// asserted once per path via [`PathTable::assert_leaf`], not here.
    #[inline]
    pub fn node_at(&self, leaf: Leaf, level: usize) -> NodeIndex {
        let (base, shift) = self.rows[level];
        NodeIndex(base + (leaf.0 >> shift))
    }

    /// Asserts `leaf` is addressable by this geometry.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn assert_leaf(&self, leaf: Leaf) {
        assert!(leaf.0 < self.leaf_count, "leaf {leaf} out of range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small() -> TreeGeometry {
        TreeGeometry::new(4, 3, 64, 16) // 8 leaves, 15 buckets
    }

    #[test]
    fn counts() {
        let g = small();
        assert_eq!(g.leaf_count(), 8);
        assert_eq!(g.bucket_count(), 15);
        assert_eq!(g.bucket_bytes(), 16 + 3 * 64);
        assert_eq!(g.path_bytes(), 4 * 208);
    }

    #[test]
    fn paper_data_tree_sizes() {
        // Default data ORAM: 26 levels, Z=3, 64 B blocks, 16 B header.
        let g = TreeGeometry::new(26, 3, 64, 16);
        assert_eq!(g.leaf_count(), 1 << 25);
        // Nominal capacity ≈ 13 GB of slots; the *addressable* capacity
        // used by the paper is 4 GB (2^26 blocks), a 33% load factor.
        assert_eq!(g.path_bytes(), 26 * 208);
    }

    #[test]
    fn root_is_on_every_path() {
        let g = small();
        for leaf in 0..g.leaf_count() {
            assert_eq!(g.node_at(Leaf(leaf), 0), g.root());
        }
    }

    #[test]
    fn leaf_level_nodes_are_distinct_and_dense() {
        let g = small();
        let nodes: Vec<u64> = (0..g.leaf_count())
            .map(|l| g.node_at(Leaf(l), g.height()).0)
            .collect();
        // Leaves occupy indices 7..15 in heap order for a 4-level tree.
        assert_eq!(nodes, (7..15).collect::<Vec<_>>());
    }

    #[test]
    fn path_parent_child_relation() {
        let g = small();
        for leaf in 0..g.leaf_count() {
            let path: Vec<NodeIndex> = g.path_nodes(Leaf(leaf)).collect();
            assert_eq!(path.len(), g.levels() as usize);
            for w in path.windows(2) {
                let (parent, child) = (w[0].0, w[1].0);
                assert!(child == 2 * parent + 1 || child == 2 * parent + 2);
            }
        }
    }

    #[test]
    fn paths_share_level_matches_node_equality() {
        let g = small();
        for a in 0..g.leaf_count() {
            for b in 0..g.leaf_count() {
                for lvl in 0..g.levels() {
                    let share = g.paths_share_level(Leaf(a), Leaf(b), lvl);
                    let same_node = g.node_at(Leaf(a), lvl) == g.node_at(Leaf(b), lvl);
                    assert_eq!(share, same_node, "a={a} b={b} lvl={lvl}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "leaf")]
    fn out_of_range_leaf_panics() {
        small().node_at(Leaf(8), 0);
    }

    proptest! {
        #[test]
        fn prop_share_levels_are_prefix_closed(levels in 2u32..20, a in any::<u64>(), b in any::<u64>()) {
            // If two paths share level L, they share every level above L.
            let g = TreeGeometry::new(levels, 3, 64, 16);
            let a = Leaf(a % g.leaf_count());
            let b = Leaf(b % g.leaf_count());
            let mut shared_so_far = true;
            for lvl in 0..g.levels() {
                let s = g.paths_share_level(a, b, lvl);
                if !shared_so_far {
                    prop_assert!(!s, "diverged paths re-converged at level {}", lvl);
                }
                shared_so_far = s;
            }
        }

        #[test]
        fn prop_deepest_shared_level_matches_predicate(levels in 1u32..26, a in any::<u64>(), b in any::<u64>()) {
            // deepest_shared_level must be exactly the boundary of the
            // per-level predicate: shared at every level up to it,
            // diverged at every level past it.
            let g = TreeGeometry::new(levels, 3, 64, 16);
            let a = Leaf(a % g.leaf_count());
            let b = Leaf(b % g.leaf_count());
            let d = g.deepest_shared_level(a, b);
            for lvl in 0..g.levels() {
                prop_assert_eq!(
                    g.paths_share_level(a, b, lvl),
                    lvl <= d,
                    "a={} b={} lvl={} d={}", a, b, lvl, d
                );
            }
        }

        #[test]
        fn prop_node_indices_in_range(levels in 1u32..26, leaf in any::<u64>()) {
            let g = TreeGeometry::new(levels, 3, 64, 16);
            let leaf = Leaf(leaf % g.leaf_count());
            for node in g.path_nodes(leaf) {
                prop_assert!(node.0 < g.bucket_count());
            }
        }
    }
}
