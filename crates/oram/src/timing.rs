//! Derived timing of one ORAM access.
//!
//! Combines the ORAM geometry ([`crate::OramConfig`]) with the DRAM
//! channel model ([`otc_dram::DdrConfig`]) to produce the access latency
//! the rest of the stack uses. With both at their defaults this reproduces
//! §9.1.2 exactly: 24.2 KB per access, 1984 DRAM cycles, 1488 CPU cycles.
//!
//! Two views of the same access exist:
//!
//! * [`OramTiming`] — the access as one opaque latency (`OLAT`), the unit
//!   a serial controller charges per slot.
//! * [`AccessPlan`] — the access decomposed into its pipelineable stages:
//!   one stage per recursive posmap lookup (smallest tree first, the
//!   order the recursion actually runs), a data-tree path read, and the
//!   data-tree path write-back (eviction). The stage costs sum to `OLAT`
//!   *exactly*, so a serial replay of the plan reproduces [`OramTiming`]
//!   bit for bit while a pipelined controller can overlap stages of
//!   consecutive accesses.

use crate::config::OramConfig;
use crate::geometry::TreeGeometry;
use otc_dram::{dram_to_cpu_cycles, Cycle, DdrConfig, TransferSpec};

/// The timing profile of one (real or dummy) ORAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OramTiming {
    /// The pin-level transfer one access performs.
    pub transfer: TransferSpec,
    /// DRAM cycles the memory system is busy per access.
    pub dram_cycles: u64,
    /// CPU-cycle latency of one access (`OLAT` in the paper's notation).
    pub latency: Cycle,
}

impl OramTiming {
    /// Derives the timing of one access of `oram` over `ddr`.
    ///
    /// # Example
    ///
    /// ```
    /// use otc_oram::{OramConfig, OramTiming};
    /// use otc_dram::DdrConfig;
    ///
    /// let t = OramTiming::derive(&OramConfig::paper(), &DdrConfig::default());
    /// assert_eq!(t.latency, 1488);          // §9.1.2
    /// assert_eq!(t.transfer.bytes, 24_256); // 24.2 KB
    /// ```
    pub fn derive(oram: &OramConfig, ddr: &DdrConfig) -> Self {
        let transfer = TransferSpec {
            bytes: oram.bytes_per_access(),
            // One row activation per bucket: the row stays open across the
            // bucket's read and its write-back.
            row_activations: oram.total_path_buckets(),
            // Read phase -> write phase -> back to reads.
            direction_switches: 2,
        };
        let dram_cycles = ddr.busy_dram_cycles(&transfer);
        Self {
            transfer,
            dram_cycles,
            latency: ddr.busy_cpu_cycles(&transfer),
        }
    }

    /// Sixteen-byte chunks moved per access (the unit of AES and stash
    /// energy in Table 2).
    pub fn chunks_per_access(&self) -> u64 {
        self.transfer.bytes / 16
    }
}

/// One ORAM access decomposed into its pipelineable stages.
///
/// Stage costs are CPU cycles and sum to [`OramTiming::latency`]
/// **exactly** (the derivation converts cumulative DRAM-cycle prefix
/// sums, so per-stage rounding telescopes away). A serial controller
/// charging `total()` per access is therefore bit-identical to the
/// opaque-OLAT model; a pipelined controller may overlap the posmap
/// stages of one access with the data-path/eviction stages of the
/// previous one, because the stages touch disjoint trees.
///
/// # Example
///
/// ```
/// use otc_oram::{AccessPlan, OramConfig, OramTiming};
/// use otc_dram::DdrConfig;
///
/// let cfg = OramConfig::paper();
/// let ddr = DdrConfig::default();
/// let plan = AccessPlan::derive(&cfg, &ddr);
/// assert_eq!(plan.total(), OramTiming::derive(&cfg, &ddr).latency);
/// assert_eq!(plan.posmap_levels.len(), 3);
/// assert!(plan.critical_path() < plan.total());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessPlan {
    /// Cost of each recursive posmap lookup (path read + write-back of
    /// that posmap tree), in recursion order: smallest tree first, ending
    /// at the tree that holds the data ORAM's positions.
    pub posmap_levels: Vec<Cycle>,
    /// Cost of reading the data tree's path — the stage whose completion
    /// returns the requested block to the tenant.
    pub data_read: Cycle,
    /// Cost of the data tree's path write-back (the eviction stage). A
    /// pipelined shard may defer this into a bounded background queue.
    pub eviction: Cycle,
}

impl AccessPlan {
    /// Decomposes one access of `oram` over `ddr` into stage costs.
    ///
    /// Accounting choices (mirroring [`OramTiming::derive`]'s aggregate
    /// transfer): each tree's row activations are charged to the stage
    /// that first opens its rows (posmap stages carry both directions of
    /// their small trees; the data tree's rows are charged to the read,
    /// which leaves them open for the write-back), and both bus
    /// turnarounds are charged to the eviction stage that causes them.
    pub fn derive(oram: &OramConfig, ddr: &DdrConfig) -> Self {
        // Cumulative transfer after each stage; stage costs are
        // differences of the converted CPU-cycle prefix sums.
        let mut cum = TransferSpec {
            bytes: 0,
            row_activations: 0,
            direction_switches: 0,
        };
        let mut last_cpu: Cycle = 0;
        let mut stage = |cum: &mut TransferSpec, bytes: u64, rows: u64, switches: u64| -> Cycle {
            cum.bytes += bytes;
            cum.row_activations += rows;
            cum.direction_switches += switches;
            let cpu = dram_to_cpu_cycles(ddr.busy_dram_cycles(cum));
            let cost = cpu - last_cpu;
            last_cpu = cpu;
            cost
        };
        // Recursion order: smallest posmap first (posmaps is stored
        // largest-first, so walk it in reverse).
        let posmap_levels = oram
            .posmaps
            .iter()
            .rev()
            .map(|g: &TreeGeometry| stage(&mut cum, 2 * g.path_bytes(), u64::from(g.levels()), 0))
            .collect();
        let data_read = stage(
            &mut cum,
            oram.data.path_bytes(),
            u64::from(oram.data.levels()),
            0,
        );
        let eviction = stage(&mut cum, oram.data.path_bytes(), 0, 2);
        Self {
            posmap_levels,
            data_read,
            eviction,
        }
    }

    /// Sum of all stage costs — equals [`OramTiming::latency`] exactly.
    pub fn total(&self) -> Cycle {
        self.posmap_cycles() + self.data_read + self.eviction
    }

    /// Sum of the posmap-stage costs (the recursion prefix of an access).
    pub fn posmap_cycles(&self) -> Cycle {
        self.posmap_levels.iter().sum()
    }

    /// Uncontended cycles until the requested block is available: the
    /// posmap recursion plus the data-path read. The eviction stage is
    /// off the tenant's critical path once it can be deferred.
    pub fn critical_path(&self) -> Cycle {
        self.posmap_cycles() + self.data_read
    }

    /// The most expensive single stage — the sustained per-access cadence
    /// of a fully pipelined shard (its throughput bound is `1 /
    /// bottleneck` accesses per cycle instead of `1 / total`).
    pub fn bottleneck(&self) -> Cycle {
        self.posmap_levels
            .iter()
            .copied()
            .chain([self.data_read, self.eviction])
            .max()
            .unwrap_or(0)
    }

    /// Steady-state initiation interval of a staged shard pipeline: the
    /// [`AccessPlan::bottleneck`] stage, surcharged by the eviction
    /// drain the data port must eventually absorb for every access.
    /// The background queue is *bounded*, so deferral shifts each drain
    /// into a later idle window but never cancels it — in steady state
    /// the data port pays `data_read + eviction` per access, and a
    /// posmap unit can only set the cadence if a single posmap stage
    /// exceeds even that combined port load.
    ///
    /// Always within `[bottleneck(), total()]`: the surcharge never
    /// prices a pipelined shard better than its busiest stage or worse
    /// than a serial one.
    pub fn staged_cadence(&self) -> Cycle {
        let port = self.data_read + self.eviction;
        self.posmap_levels
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(port)
    }
}

/// Which per-slot service figure admission control prices capacity at.
///
/// The observable slot grid is untouched by this choice — a slot's
/// period is always `rate + OLAT` — only the *internal* service cost a
/// slot is assumed to occupy changes, and with it how many tenants fit
/// a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CapacityKind {
    /// One full `OLAT` per slot, regardless of the pipeline discipline —
    /// the pre-cadence reference pricing. Under-admits a staged pool
    /// (stages of consecutive accesses overlap, so a slot does not
    /// occupy a shard for a full `OLAT`), but reproduces the historical
    /// admission decisions bit for bit.
    #[default]
    Olat,
    /// The pipeline's steady-state initiation interval: `total()` (=
    /// `OLAT`) for a serial shard, [`AccessPlan::staged_cadence`] for a
    /// staged one. Prices admission at the bandwidth the pipeline
    /// actually sustains.
    Cadence,
}

impl std::fmt::Display for CapacityKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CapacityKind::Olat => write!(f, "olat"),
            CapacityKind::Cadence => write!(f, "cadence"),
        }
    }
}

/// Unified capacity model: converts an [`AccessPlan`] plus a pipeline
/// discipline into the per-slot service figure admission control,
/// utilization accounting, and the scheduler's capacity math all price
/// against.
///
/// Two figures coexist because they answer different questions: `OLAT`
/// is what one access *costs end to end* (and what the observable slot
/// grid is built from), while the pipeline cadence is how often a shard
/// can *start* an access at steady state. A serial shard's cadence is
/// exactly `OLAT`, so the two pricings coincide there; a staged shard's
/// cadence is lower, which is precisely the admission headroom the
/// pipeline buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityModel {
    kind: CapacityKind,
    olat: Cycle,
    pipeline_cadence: Cycle,
}

impl CapacityModel {
    /// Model for a serial shard: the pipeline cadence *is* `OLAT`
    /// (accesses run strictly back to back), so both [`CapacityKind`]s
    /// price identically.
    pub fn serial(plan: &AccessPlan, kind: CapacityKind) -> Self {
        Self {
            kind,
            olat: plan.total(),
            pipeline_cadence: plan.total(),
        }
    }

    /// Model for a staged shard: the pipeline cadence is
    /// [`AccessPlan::staged_cadence`].
    pub fn staged(plan: &AccessPlan, kind: CapacityKind) -> Self {
        Self {
            kind,
            olat: plan.total(),
            pipeline_cadence: plan.staged_cadence(),
        }
    }

    /// Model for a heterogeneous pool: the caller supplies the aggregate
    /// figures directly (typically the maxima over the pool's shard
    /// classes, so pricing stays conservative for whichever shard a slot
    /// lands on). For a homogeneous pool this is field-identical to
    /// [`CapacityModel::serial`] / [`CapacityModel::staged`] built from
    /// that one class's plan.
    pub fn from_parts(kind: CapacityKind, olat: Cycle, pipeline_cadence: Cycle) -> Self {
        Self {
            kind,
            olat,
            pipeline_cadence,
        }
    }

    /// The pricing in force.
    pub fn kind(&self) -> CapacityKind {
        self.kind
    }

    /// End-to-end cost of one access (`OLAT`) — the figure slot grids
    /// are built from, whatever the pricing.
    pub fn olat(&self) -> Cycle {
        self.olat
    }

    /// The pipeline's steady-state initiation interval (== `OLAT` for a
    /// serial shard), independent of the pricing in force.
    pub fn pipeline_cadence(&self) -> Cycle {
        self.pipeline_cadence
    }

    /// The per-slot service figure admission prices against under the
    /// model's [`CapacityKind`].
    pub fn effective_cadence(&self) -> Cycle {
        match self.kind {
            CapacityKind::Olat => self.olat,
            CapacityKind::Cadence => self.pipeline_cadence,
        }
    }

    /// Worst-case fraction of one shard a tenant slotting at `rate`
    /// demands: one slot per `rate + OLAT` cycles (the grid period is a
    /// property of the observable stream and never moves with the
    /// pricing), each occupying [`CapacityModel::effective_cadence`]
    /// service cycles.
    pub fn slot_utilization(&self, rate: Cycle) -> f64 {
        self.effective_cadence() as f64 / (rate + self.olat) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers() {
        let t = OramTiming::derive(&OramConfig::paper(), &DdrConfig::default());
        assert_eq!(t.transfer.bytes, 24_256);
        assert_eq!(t.chunks_per_access(), 1516); // 2 * 758
        assert_eq!(t.dram_cycles, 1984);
        assert_eq!(t.latency, 1488);
    }

    #[test]
    fn small_config_is_faster() {
        let paper = OramTiming::derive(&OramConfig::paper(), &DdrConfig::default());
        let small = OramTiming::derive(&OramConfig::small(), &DdrConfig::default());
        assert!(small.latency < paper.latency);
        assert!(small.latency > 0);
    }

    #[test]
    fn plan_stages_sum_to_olat_exactly() {
        for cfg in [OramConfig::paper(), OramConfig::small()] {
            let ddr = DdrConfig::default();
            let t = OramTiming::derive(&cfg, &ddr);
            let plan = AccessPlan::derive(&cfg, &ddr);
            assert_eq!(plan.total(), t.latency, "{cfg:?}");
            assert_eq!(plan.posmap_levels.len(), cfg.posmaps.len());
            assert!(plan.posmap_levels.iter().all(|&c| c > 0));
            assert!(plan.data_read > 0 && plan.eviction > 0);
        }
    }

    #[test]
    fn plan_paper_shape() {
        let plan = AccessPlan::derive(&OramConfig::paper(), &DdrConfig::default());
        // Recursion order: smallest posmap (17 levels) first, so stage
        // costs grow monotonically along the recursion.
        assert!(plan.posmap_levels.windows(2).all(|w| w[0] < w[1]));
        // The data read dominates any single posmap stage; the critical
        // path (posmaps + data read) is meaningfully below full OLAT.
        assert!(plan.data_read > *plan.posmap_levels.last().expect("non-empty"));
        assert!(plan.critical_path() < plan.total());
        assert_eq!(plan.bottleneck(), plan.data_read);
        // A fully pipelined shard sustains better than 2 accesses per
        // OLAT at the paper geometry.
        assert!(2 * plan.bottleneck() < plan.total());
    }

    #[test]
    fn plan_total_tracks_olat_across_geometries() {
        // The exact-sum property must hold for odd geometries where
        // per-stage DRAM->CPU rounding would otherwise drift.
        for levels in [9u32, 13, 21] {
            let mut c = OramConfig::small();
            c.data = crate::geometry::TreeGeometry::new(levels, 3, 64, 16);
            let ddr = DdrConfig::default();
            assert_eq!(
                AccessPlan::derive(&c, &ddr).total(),
                OramTiming::derive(&c, &ddr).latency,
                "levels={levels}"
            );
        }
    }

    #[test]
    fn staged_cadence_sits_between_bottleneck_and_olat() {
        for cfg in [OramConfig::paper(), OramConfig::small()] {
            let plan = AccessPlan::derive(&cfg, &DdrConfig::default());
            let cadence = plan.staged_cadence();
            assert!(plan.bottleneck() <= cadence, "{cfg:?}");
            assert!(cadence <= plan.total(), "{cfg:?}");
            // At both stock geometries the data port (read + drain) is
            // the cadence, and it beats serial by well over the 1.5×
            // admission headroom the staged pools are sized for.
            assert_eq!(cadence, plan.data_read + plan.eviction, "{cfg:?}");
            assert!(plan.total() as f64 / cadence as f64 >= 1.5, "{cfg:?}");
        }
    }

    #[test]
    fn capacity_model_pricing() {
        let plan = AccessPlan::derive(&OramConfig::paper(), &DdrConfig::default());
        let olat = plan.total();
        // Serial: both pricings coincide at OLAT.
        for kind in [CapacityKind::Olat, CapacityKind::Cadence] {
            let m = CapacityModel::serial(&plan, kind);
            assert_eq!(m.effective_cadence(), olat);
            assert_eq!(m.pipeline_cadence(), olat);
            assert_eq!(m.olat(), olat);
        }
        // Staged: olat pricing still charges OLAT; cadence pricing
        // charges the steady-state initiation interval.
        let m = CapacityModel::staged(&plan, CapacityKind::Olat);
        assert_eq!(m.effective_cadence(), olat);
        assert_eq!(m.pipeline_cadence(), plan.staged_cadence());
        let m = CapacityModel::staged(&plan, CapacityKind::Cadence);
        assert_eq!(m.effective_cadence(), plan.staged_cadence());
        // The utilization formula keeps the grid period at rate + OLAT
        // under both pricings.
        let rate = 2_000u64;
        let m_olat = CapacityModel::staged(&plan, CapacityKind::Olat);
        assert_eq!(
            m_olat.slot_utilization(rate),
            olat as f64 / (rate + olat) as f64
        );
        assert_eq!(
            m.slot_utilization(rate),
            plan.staged_cadence() as f64 / (rate + olat) as f64
        );
        assert!(m.slot_utilization(rate) < m_olat.slot_utilization(rate));
    }

    #[test]
    fn from_parts_matches_the_plan_constructors() {
        // A homogeneous "mix" must price field-identically to the plan
        // constructors — the bit-exact replay suites depend on it.
        let plan = AccessPlan::derive(&OramConfig::paper(), &DdrConfig::default());
        for kind in [CapacityKind::Olat, CapacityKind::Cadence] {
            assert_eq!(
                CapacityModel::from_parts(kind, plan.total(), plan.total()),
                CapacityModel::serial(&plan, kind)
            );
            assert_eq!(
                CapacityModel::from_parts(kind, plan.total(), plan.staged_cadence()),
                CapacityModel::staged(&plan, kind)
            );
        }
        // A genuine mix: olat from the slowest class, cadence likewise.
        let m = CapacityModel::from_parts(CapacityKind::Cadence, 1_488, 700);
        assert_eq!(m.olat(), 1_488);
        assert_eq!(m.pipeline_cadence(), 700);
        assert_eq!(m.effective_cadence(), 700);
        // The grid period stays rate + OLAT whatever the cadence.
        assert_eq!(m.slot_utilization(512), 700.0 / 2_000.0);
    }

    #[test]
    fn capacity_kind_display_is_the_cli_token() {
        assert_eq!(CapacityKind::Olat.to_string(), "olat");
        assert_eq!(CapacityKind::Cadence.to_string(), "cadence");
        assert_eq!(CapacityKind::default(), CapacityKind::Olat);
    }

    #[test]
    fn latency_scales_with_levels() {
        let mut c = OramConfig::paper();
        let base = OramTiming::derive(&c, &DdrConfig::default()).latency;
        c.data = crate::geometry::TreeGeometry::new(28, 3, 64, 16);
        let deeper = OramTiming::derive(&c, &DdrConfig::default()).latency;
        assert!(deeper > base);
    }
}
