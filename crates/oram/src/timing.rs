//! Derived timing of one ORAM access.
//!
//! Combines the ORAM geometry ([`crate::OramConfig`]) with the DRAM
//! channel model ([`otc_dram::DdrConfig`]) to produce the access latency
//! the rest of the stack uses. With both at their defaults this reproduces
//! §9.1.2 exactly: 24.2 KB per access, 1984 DRAM cycles, 1488 CPU cycles.

use crate::config::OramConfig;
use otc_dram::{Cycle, DdrConfig, TransferSpec};

/// The timing profile of one (real or dummy) ORAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OramTiming {
    /// The pin-level transfer one access performs.
    pub transfer: TransferSpec,
    /// DRAM cycles the memory system is busy per access.
    pub dram_cycles: u64,
    /// CPU-cycle latency of one access (`OLAT` in the paper's notation).
    pub latency: Cycle,
}

impl OramTiming {
    /// Derives the timing of one access of `oram` over `ddr`.
    ///
    /// # Example
    ///
    /// ```
    /// use otc_oram::{OramConfig, OramTiming};
    /// use otc_dram::DdrConfig;
    ///
    /// let t = OramTiming::derive(&OramConfig::paper(), &DdrConfig::default());
    /// assert_eq!(t.latency, 1488);          // §9.1.2
    /// assert_eq!(t.transfer.bytes, 24_256); // 24.2 KB
    /// ```
    pub fn derive(oram: &OramConfig, ddr: &DdrConfig) -> Self {
        let transfer = TransferSpec {
            bytes: oram.bytes_per_access(),
            // One row activation per bucket: the row stays open across the
            // bucket's read and its write-back.
            row_activations: oram.total_path_buckets(),
            // Read phase -> write phase -> back to reads.
            direction_switches: 2,
        };
        let dram_cycles = ddr.busy_dram_cycles(&transfer);
        Self {
            transfer,
            dram_cycles,
            latency: ddr.busy_cpu_cycles(&transfer),
        }
    }

    /// Sixteen-byte chunks moved per access (the unit of AES and stash
    /// energy in Table 2).
    pub fn chunks_per_access(&self) -> u64 {
        self.transfer.bytes / 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers() {
        let t = OramTiming::derive(&OramConfig::paper(), &DdrConfig::default());
        assert_eq!(t.transfer.bytes, 24_256);
        assert_eq!(t.chunks_per_access(), 1516); // 2 * 758
        assert_eq!(t.dram_cycles, 1984);
        assert_eq!(t.latency, 1488);
    }

    #[test]
    fn small_config_is_faster() {
        let paper = OramTiming::derive(&OramConfig::paper(), &DdrConfig::default());
        let small = OramTiming::derive(&OramConfig::small(), &DdrConfig::default());
        assert!(small.latency < paper.latency);
        assert!(small.latency > 0);
    }

    #[test]
    fn latency_scales_with_levels() {
        let mut c = OramConfig::paper();
        let base = OramTiming::derive(&c, &DdrConfig::default()).latency;
        c.data = crate::geometry::TreeGeometry::new(28, 3, 64, 16);
        let deeper = OramTiming::derive(&c, &DdrConfig::default()).latency;
        assert!(deeper > base);
    }
}
