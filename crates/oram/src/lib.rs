//! A from-scratch Path ORAM implementation (Stefanov et al. [32], as built
//! into secure processors by Ren et al. [26]), the memory substrate of the
//! HPCA'14 timing-channel paper this repository reproduces.
//!
//! # What lives here
//!
//! * [`TreeGeometry`] / [`TreeOram`] — one binary-tree ORAM: lazily
//!   materialized buckets in (simulated) untrusted DRAM, an on-chip
//!   [`stash`](Stash), greedy path eviction, and probabilistic
//!   re-encryption of every bucket a path touches.
//! * [`RecursivePathOram`] — the full controller: a data ORAM plus three
//!   recursive position-map ORAMs (§9.1.2), an on-chip final position
//!   map, and indistinguishable dummy accesses.
//! * [`OramConfig`] — geometry; the default reproduces the paper's
//!   4 GB / Z=3 / 64 B-block configuration, which moves 24.2 KB per
//!   access.
//! * [`OramTiming`] / [`AccessPlan`] — access latency derived from the
//!   geometry and the [`otc_dram`] channel model; 1488 CPU cycles at the
//!   defaults, either as one opaque `OLAT` or decomposed into the
//!   pipelineable stages (posmap lookups, data-path read, eviction) a
//!   pipelined shard overlaps across consecutive accesses.
//!
//! Timing protection does **not** live here: this crate answers *what an
//! access does and costs*, while `otc-core` (the paper's contribution)
//! decides *when accesses happen*.
//!
//! # Example
//!
//! ```
//! use otc_oram::{OramConfig, RecursivePathOram, OramTiming};
//! use otc_dram::DdrConfig;
//!
//! let mut oram = RecursivePathOram::new(OramConfig::small())?;
//! oram.write(7, &[1u8; 64]);
//! assert_eq!(oram.read(7), vec![1u8; 64]);
//!
//! let timing = OramTiming::derive(&OramConfig::paper(), &DdrConfig::default());
//! assert_eq!(timing.latency, 1488); // the paper's per-access latency
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bucket;
mod config;
mod geometry;
mod integrity;
mod posmap;
mod recursive;
mod stash;
mod stats;
mod timing;
mod tree;
pub mod types;

pub use bucket::{Bucket, StoredBlock};
pub use config::{OramConfig, POSMAP_ENTRY_BYTES};
pub use geometry::TreeGeometry;
pub use integrity::{Digest, IntegrityTree, Verification};
pub use posmap::SparseLeafMap;
pub use recursive::RecursivePathOram;
pub use stash::Stash;
pub use stats::OramStats;
pub use timing::{AccessPlan, CapacityKind, CapacityModel, OramTiming};
pub use tree::{DefaultPayload, TreeOram, TreeStats};
pub use types::{BlockId, Leaf, NodeIndex, OramOp};
