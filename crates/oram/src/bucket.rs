//! Buckets: the fixed-size tree nodes stored in untrusted DRAM.

use crate::types::{BlockId, Leaf};

/// A real (non-dummy) block as stored in a bucket or the stash.
///
/// Path ORAM stores the triple (address, leaf label, payload) per block so
/// the controller can evict correctly after reading a path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredBlock {
    /// Logical block address.
    pub id: BlockId,
    /// The leaf this block is currently mapped to.
    pub leaf: Leaf,
    /// Payload bytes (`block_bytes` long).
    pub payload: Vec<u8>,
}

/// One tree node. In DRAM a bucket always occupies
/// `header + Z * block_bytes` bytes — real blocks are padded with
/// indistinguishable dummies (§3) — so only the *real* blocks are stored
/// here, plus the encryption counter that models probabilistic
/// re-encryption.
#[derive(Debug, Clone, Default)]
pub struct Bucket {
    /// Real blocks currently resident (≤ Z).
    pub blocks: Vec<StoredBlock>,
    /// How many times this bucket has been (re-)encrypted and written
    /// back. Together with the bucket's node index this determines the
    /// ciphertext fingerprint an adversary observes: every write-back
    /// under probabilistic encryption yields a fresh-looking ciphertext.
    pub encryption_counter: u64,
}

impl Bucket {
    /// An empty bucket (all dummies), counter at zero — the state of every
    /// bucket before the tree is first touched.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of real blocks resident.
    pub fn occupancy(&self) -> usize {
        self.blocks.len()
    }

    /// Removes and returns all real blocks (path read pulls blocks into
    /// the stash).
    pub fn take_blocks(&mut self) -> Vec<StoredBlock> {
        std::mem::take(&mut self.blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bucket_has_no_blocks() {
        let b = Bucket::empty();
        assert_eq!(b.occupancy(), 0);
        assert_eq!(b.encryption_counter, 0);
    }

    #[test]
    fn take_blocks_empties() {
        let mut b = Bucket::empty();
        b.blocks.push(StoredBlock {
            id: BlockId(1),
            leaf: Leaf(0),
            payload: vec![1, 2, 3],
        });
        let taken = b.take_blocks();
        assert_eq!(taken.len(), 1);
        assert_eq!(b.occupancy(), 0);
    }
}
