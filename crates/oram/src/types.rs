//! Fundamental identifier types shared across the ORAM crate.

/// Identifies a logical block (one 64 B cache line in the data ORAM, or
/// one 32 B position-map block in a recursive ORAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blk{}", self.0)
    }
}

/// A leaf label in one ORAM tree. Path ORAM's invariant (§3): if a block
/// is mapped to leaf `l`, it lives somewhere on the path from the root to
/// `l` (or in the stash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Leaf(pub u64);

impl std::fmt::Display for Leaf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "leaf{}", self.0)
    }
}

/// Index of a bucket (tree node) in heap order: root is 0, children of
/// node `i` are `2i + 1` and `2i + 2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeIndex(pub u64);

/// The two logical operations the processor issues to the ORAM controller
/// (it is invoked on LLC misses and evictions, §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OramOp {
    /// Fetch a cache line (LLC miss).
    Read,
    /// Write a cache line back (LLC dirty eviction).
    Write,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(BlockId(3).to_string(), "blk3");
        assert_eq!(Leaf(7).to_string(), "leaf7");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        use std::collections::HashSet;
        let s: HashSet<BlockId> = [BlockId(1), BlockId(2), BlockId(1)].into_iter().collect();
        assert_eq!(s.len(), 2);
        assert!(Leaf(1) < Leaf(2));
    }
}
