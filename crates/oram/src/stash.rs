//! The on-chip stash.
//!
//! Blocks read off a path that cannot be immediately evicted back wait in
//! a small on-chip memory ([26] sizes it at 128 KB and the power model
//! charges stash reads/writes per 16 B chunk, Table 2). Path ORAM's
//! security argument requires the stash occupancy to stay small with
//! overwhelming probability; the property tests in `tree.rs` exercise
//! this.

use crate::bucket::StoredBlock;
use crate::types::{BlockId, Leaf};
use std::collections::BTreeMap;

/// On-chip stash: an associative store of blocks awaiting eviction.
///
/// Backed by a `BTreeMap` so iteration is id-ordered: eviction's
/// lowest-id tie-break falls out of a plain early-exit scan, and the
/// DRAM image (not just timing and fingerprints) is bit-reproducible
/// across runs — which matters once deferred evictions interleave.
#[derive(Debug, Clone, Default)]
pub struct Stash {
    blocks: BTreeMap<BlockId, StoredBlock>,
    peak: usize,
}

impl Stash {
    /// An empty stash.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current number of resident blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the stash is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Largest occupancy ever observed (reported by experiments; the
    /// paper's hardware provisions a fixed-size stash).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Inserts a block (replacing any stale copy with the same id).
    pub fn insert(&mut self, block: StoredBlock) {
        self.blocks.insert(block.id, block);
        self.peak = self.peak.max(self.blocks.len());
    }

    /// Looks up a block without removing it.
    pub fn get(&self, id: BlockId) -> Option<&StoredBlock> {
        self.blocks.get(&id)
    }

    /// Mutable lookup (used by read-modify-write accesses).
    pub fn get_mut(&mut self, id: BlockId) -> Option<&mut StoredBlock> {
        self.blocks.get_mut(&id)
    }

    /// Whether a block is resident.
    pub fn contains(&self, id: BlockId) -> bool {
        self.blocks.contains_key(&id)
    }

    /// Removes and returns every block that may legally be evicted into
    /// the bucket at `level` on the path to `path_leaf`, up to `limit`
    /// blocks (the bucket's free capacity).
    ///
    /// `may_place(block_leaf)` is the geometry predicate — the block's own
    /// path must pass through that bucket.
    ///
    /// When more blocks are eligible than fit, the lowest block ids win
    /// (the map iterates in id order, so the scan can still stop at
    /// `limit`): a deterministic tie-break, where the earlier hash-order
    /// choice could park different blocks in shared buckets from run to
    /// run.
    pub fn drain_for_bucket<F>(&mut self, limit: usize, mut may_place: F) -> Vec<StoredBlock>
    where
        F: FnMut(Leaf) -> bool,
    {
        if limit == 0 {
            return Vec::new();
        }
        let mut chosen: Vec<BlockId> = Vec::with_capacity(limit);
        for (id, blk) in self.blocks.iter() {
            if may_place(blk.leaf) {
                chosen.push(*id);
                if chosen.len() == limit {
                    break;
                }
            }
        }
        chosen
            .into_iter()
            .map(|id| self.blocks.remove(&id).expect("chosen from stash"))
            .collect()
    }

    /// Iterates over resident blocks (for invariant checks).
    pub fn iter(&self) -> impl Iterator<Item = &StoredBlock> {
        self.blocks.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(id: u64, leaf: u64) -> StoredBlock {
        StoredBlock {
            id: BlockId(id),
            leaf: Leaf(leaf),
            payload: vec![id as u8],
        }
    }

    #[test]
    fn insert_get_contains() {
        let mut s = Stash::new();
        s.insert(blk(1, 0));
        assert!(s.contains(BlockId(1)));
        assert_eq!(s.get(BlockId(1)).map(|b| b.leaf), Some(Leaf(0)));
        assert!(!s.contains(BlockId(2)));
    }

    #[test]
    fn insert_same_id_replaces() {
        let mut s = Stash::new();
        s.insert(blk(1, 0));
        s.insert(blk(1, 5));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(BlockId(1)).map(|b| b.leaf), Some(Leaf(5)));
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut s = Stash::new();
        for i in 0..10 {
            s.insert(blk(i, 0));
        }
        let drained = s.drain_for_bucket(10, |_| true);
        assert_eq!(drained.len(), 10);
        assert_eq!(s.len(), 0);
        assert_eq!(s.peak(), 10);
    }

    #[test]
    fn drain_respects_limit_and_predicate() {
        let mut s = Stash::new();
        s.insert(blk(1, 0));
        s.insert(blk(2, 1));
        s.insert(blk(3, 0));
        let drained = s.drain_for_bucket(1, |leaf| leaf == Leaf(0));
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].leaf, Leaf(0));
        assert_eq!(s.len(), 2);
        let drained2 = s.drain_for_bucket(5, |leaf| leaf == Leaf(0));
        assert_eq!(drained2.len(), 1);
        let drained3 = s.drain_for_bucket(5, |_| true);
        assert_eq!(drained3.len(), 1);
        assert_eq!(drained3[0].leaf, Leaf(1));
        assert!(s.is_empty());
    }

    #[test]
    fn drain_prefers_lowest_ids_deterministically() {
        let mut s = Stash::new();
        for id in [5u64, 2, 9, 1] {
            s.insert(blk(id, 0));
        }
        let ids: Vec<u64> = s
            .drain_for_bucket(2, |_| true)
            .iter()
            .map(|b| b.id.0)
            .collect();
        assert_eq!(ids, [1, 2]);
    }

    #[test]
    fn drain_zero_limit_is_noop() {
        let mut s = Stash::new();
        s.insert(blk(1, 0));
        assert!(s.drain_for_bucket(0, |_| true).is_empty());
        assert_eq!(s.len(), 1);
    }
}
