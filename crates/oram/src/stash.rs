//! The on-chip stash.
//!
//! Blocks read off a path that cannot be immediately evicted back wait in
//! a small on-chip memory ([26] sizes it at 128 KB and the power model
//! charges stash reads/writes per 16 B chunk, Table 2). Path ORAM's
//! security argument requires the stash occupancy to stay small with
//! overwhelming probability; the property tests in `tree.rs` exercise
//! this.

use crate::bucket::StoredBlock;
use crate::types::{BlockId, Leaf};
use std::collections::BTreeMap;

/// On-chip stash: an associative store of blocks awaiting eviction.
///
/// Backed by a `BTreeMap` so iteration is id-ordered: eviction's
/// lowest-id tie-break falls out of a plain early-exit scan, and the
/// DRAM image (not just timing and fingerprints) is bit-reproducible
/// across runs — which matters once deferred evictions interleave.
#[derive(Debug, Clone, Default)]
pub struct Stash {
    blocks: BTreeMap<BlockId, StoredBlock>,
    peak: usize,
    /// Reusable eviction scratch: the ids chosen for the bucket being
    /// filled. Kept across drains so the steady-state eviction path
    /// allocates nothing.
    chosen: Vec<BlockId>,
    /// Reusable scratch for [`Stash::evict_path_into`]: the `(id, level)`
    /// placements of one whole-path eviction pass.
    placed: Vec<(BlockId, usize)>,
}

impl Stash {
    /// An empty stash.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current number of resident blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the stash is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Largest occupancy ever observed (reported by experiments; the
    /// paper's hardware provisions a fixed-size stash).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Inserts a block (replacing any stale copy with the same id).
    pub fn insert(&mut self, block: StoredBlock) {
        self.blocks.insert(block.id, block);
        self.peak = self.peak.max(self.blocks.len());
    }

    /// Looks up a block without removing it.
    pub fn get(&self, id: BlockId) -> Option<&StoredBlock> {
        self.blocks.get(&id)
    }

    /// Mutable lookup (used by read-modify-write accesses).
    pub fn get_mut(&mut self, id: BlockId) -> Option<&mut StoredBlock> {
        self.blocks.get_mut(&id)
    }

    /// Whether a block is resident.
    pub fn contains(&self, id: BlockId) -> bool {
        self.blocks.contains_key(&id)
    }

    /// Removes and returns every block that may legally be evicted into
    /// the bucket at `level` on the path to `path_leaf`, up to `limit`
    /// blocks (the bucket's free capacity).
    ///
    /// `may_place(block_leaf)` is the geometry predicate — the block's own
    /// path must pass through that bucket.
    ///
    /// When more blocks are eligible than fit, the lowest block ids win
    /// (the map iterates in id order, so the scan can still stop at
    /// `limit`): a deterministic tie-break, where the earlier hash-order
    /// choice could park different blocks in shared buckets from run to
    /// run.
    pub fn drain_for_bucket<F>(&mut self, limit: usize, may_place: F) -> Vec<StoredBlock>
    where
        F: FnMut(Leaf) -> bool,
    {
        let mut out = Vec::with_capacity(limit.min(self.blocks.len()));
        self.drain_for_bucket_into(limit, may_place, &mut out);
        out
    }

    /// As [`Stash::drain_for_bucket`], but *appending* the evicted
    /// blocks to a caller-owned buffer (typically the bucket's own block
    /// vector, emptied by the preceding path read), so the steady-state
    /// eviction path performs no allocation. Selection is identical:
    /// id-ordered scan, first `limit` eligible blocks win.
    pub fn drain_for_bucket_into<F>(
        &mut self,
        limit: usize,
        mut may_place: F,
        out: &mut Vec<StoredBlock>,
    ) where
        F: FnMut(Leaf) -> bool,
    {
        if limit == 0 {
            return;
        }
        self.chosen.clear();
        for (id, blk) in self.blocks.iter() {
            if may_place(blk.leaf) {
                self.chosen.push(*id);
                if self.chosen.len() == limit {
                    break;
                }
            }
        }
        for i in 0..self.chosen.len() {
            let id = self.chosen[i];
            out.push(self.blocks.remove(&id).expect("chosen from stash"));
        }
    }

    /// Evicts blocks for one *whole path* in a single id-ordered pass:
    /// each block goes to the deepest level `<= deepest(leaf)` whose
    /// output bucket still has a free slot (at most `z` per level), or
    /// stays resident when every eligible level is full.
    ///
    /// This produces placements *identical* to the reference per-bucket
    /// procedure — calling [`Stash::drain_for_bucket_into`] once per
    /// level from the leaf upward with the paths-share predicate — in
    /// O(stash + levels) instead of O(stash x levels). The two are
    /// equivalent because eviction legality is prefix-closed (a block
    /// eligible at level `l` is eligible at every level above `l`), so
    /// both procedures greedily match the same lowest-id blocks to the
    /// deepest buckets; `prop_single_pass_eviction_matches_per_bucket`
    /// pins this exhaustively.
    ///
    /// `out` must hold one (typically recycled, emptied-by-path-read)
    /// vector per level, root first. Blocks land in each vector in
    /// ascending id order, exactly as the per-bucket scan emitted them.
    pub fn evict_path_into<F>(&mut self, z: usize, mut deepest: F, out: &mut [Vec<StoredBlock>])
    where
        F: FnMut(Leaf) -> usize,
    {
        if z == 0 || out.is_empty() {
            return;
        }
        self.placed.clear();
        for (id, blk) in self.blocks.iter() {
            let d = deepest(blk.leaf).min(out.len() - 1);
            // Deepest-first: levels fill monotonically, so this scan is
            // O(1) amortized — it only walks levels that are already
            // full, and each level fills once per pass.
            for level in (0..=d).rev() {
                if out[level].len() < z {
                    out[level].push(StoredBlock {
                        id: *id,
                        leaf: blk.leaf,
                        payload: Vec::new(),
                    });
                    self.placed.push((*id, level));
                    break;
                }
            }
        }
        // Second pass moves the real payloads: the placeholder pushed
        // above reserved the slot (keeping per-level id order and
        // capacity exact) without fighting the borrow on `self.blocks`.
        for i in 0..self.placed.len() {
            let (id, level) = self.placed[i];
            let block = self.blocks.remove(&id).expect("placed from stash");
            let slot = out[level]
                .iter_mut()
                .find(|b| b.id == id)
                .expect("slot reserved above");
            *slot = block;
        }
    }

    /// Iterates over resident blocks (for invariant checks).
    pub fn iter(&self) -> impl Iterator<Item = &StoredBlock> {
        self.blocks.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(id: u64, leaf: u64) -> StoredBlock {
        StoredBlock {
            id: BlockId(id),
            leaf: Leaf(leaf),
            payload: vec![id as u8],
        }
    }

    #[test]
    fn insert_get_contains() {
        let mut s = Stash::new();
        s.insert(blk(1, 0));
        assert!(s.contains(BlockId(1)));
        assert_eq!(s.get(BlockId(1)).map(|b| b.leaf), Some(Leaf(0)));
        assert!(!s.contains(BlockId(2)));
    }

    #[test]
    fn insert_same_id_replaces() {
        let mut s = Stash::new();
        s.insert(blk(1, 0));
        s.insert(blk(1, 5));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(BlockId(1)).map(|b| b.leaf), Some(Leaf(5)));
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut s = Stash::new();
        for i in 0..10 {
            s.insert(blk(i, 0));
        }
        let drained = s.drain_for_bucket(10, |_| true);
        assert_eq!(drained.len(), 10);
        assert_eq!(s.len(), 0);
        assert_eq!(s.peak(), 10);
    }

    #[test]
    fn drain_respects_limit_and_predicate() {
        let mut s = Stash::new();
        s.insert(blk(1, 0));
        s.insert(blk(2, 1));
        s.insert(blk(3, 0));
        let drained = s.drain_for_bucket(1, |leaf| leaf == Leaf(0));
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].leaf, Leaf(0));
        assert_eq!(s.len(), 2);
        let drained2 = s.drain_for_bucket(5, |leaf| leaf == Leaf(0));
        assert_eq!(drained2.len(), 1);
        let drained3 = s.drain_for_bucket(5, |_| true);
        assert_eq!(drained3.len(), 1);
        assert_eq!(drained3[0].leaf, Leaf(1));
        assert!(s.is_empty());
    }

    #[test]
    fn drain_prefers_lowest_ids_deterministically() {
        let mut s = Stash::new();
        for id in [5u64, 2, 9, 1] {
            s.insert(blk(id, 0));
        }
        let ids: Vec<u64> = s
            .drain_for_bucket(2, |_| true)
            .iter()
            .map(|b| b.id.0)
            .collect();
        assert_eq!(ids, [1, 2]);
    }

    #[test]
    fn drain_zero_limit_is_noop() {
        let mut s = Stash::new();
        s.insert(blk(1, 0));
        assert!(s.drain_for_bucket(0, |_| true).is_empty());
        assert_eq!(s.len(), 1);
    }

    mod single_pass_equivalence {
        use super::*;
        use crate::geometry::TreeGeometry;
        use proptest::prelude::*;

        /// Reference eviction: one [`Stash::drain_for_bucket`] per level,
        /// leaf upward — exactly what `TreeOram::write_path_from_stash`
        /// did before the single-pass rewrite.
        fn per_bucket(
            stash: &mut Stash,
            geom: &TreeGeometry,
            path_leaf: Leaf,
            out: &mut [Vec<StoredBlock>],
        ) {
            for level in (0..geom.levels() as usize).rev() {
                let drained = stash.drain_for_bucket(geom.z(), |block_leaf| {
                    geom.paths_share_level(path_leaf, block_leaf, level as u32)
                });
                out[level] = drained;
            }
        }

        proptest! {
            #[test]
            fn prop_single_pass_eviction_matches_per_bucket(
                levels in 1u32..6,
                z in 1usize..4,
                path_leaf in any::<u64>(),
                blocks in proptest::collection::vec((0u64..48, any::<u64>()), 0..32),
            ) {
                let geom = TreeGeometry::new(levels, z, 64, 16);
                let path_leaf = Leaf(path_leaf % geom.leaf_count());
                let mut reference = Stash::new();
                let mut fast = Stash::new();
                for &(id, leaf) in &blocks {
                    let b = blk(id, leaf % geom.leaf_count());
                    reference.insert(b.clone());
                    fast.insert(b);
                }
                let n = levels as usize;
                let mut ref_out = vec![Vec::new(); n];
                let mut fast_out = vec![Vec::new(); n];
                per_bucket(&mut reference, &geom, path_leaf, &mut ref_out);
                fast.evict_path_into(
                    geom.z(),
                    |block_leaf| geom.deepest_shared_level(path_leaf, block_leaf) as usize,
                    &mut fast_out,
                );
                prop_assert_eq!(fast_out, ref_out, "bucket placements diverged");
                let rem_ref: Vec<BlockId> = reference.iter().map(|b| b.id).collect();
                let rem_fast: Vec<BlockId> = fast.iter().map(|b| b.id).collect();
                prop_assert_eq!(rem_fast, rem_ref, "resident sets diverged");
            }
        }
    }
}
