//! The full recursive Path ORAM controller.
//!
//! One logical access touches four trees in sequence (§9.1.2: "3 levels of
//! recursion"): the on-chip position map yields the leaf of a block in the
//! smallest posmap ORAM; reading that block yields the leaf of a block in
//! the next posmap ORAM; and so on down to the data ORAM. Every touched
//! block is remapped to a fresh random leaf as it is accessed — the
//! critical security step (§3.1).

use crate::config::{OramConfig, POSMAP_ENTRY_BYTES};
use crate::posmap::SparseLeafMap;
use crate::stats::OramStats;
use crate::timing::AccessPlan;
use crate::tree::{DefaultPayload, TreeOram};
use crate::types::{BlockId, Leaf, NodeIndex, OramOp};
use otc_crypto::{Prf, SplitMix64, SymmetricKey};
use otc_dram::DdrConfig;
use std::collections::VecDeque;

/// A complete Path ORAM with recursive position maps.
///
/// # Example
///
/// ```
/// use otc_oram::{OramConfig, RecursivePathOram};
///
/// let mut oram = RecursivePathOram::new(OramConfig::small()).expect("valid config");
/// oram.write(3, &[0xCD; 64]);
/// assert_eq!(oram.read(3), vec![0xCD; 64]);
/// // Every access (including the read) touched all four trees:
/// assert_eq!(oram.stats().real_accesses, 2);
/// ```
pub struct RecursivePathOram {
    config: OramConfig,
    data: TreeOram,
    /// `posmaps[0]` holds data-ORAM positions, …, last is smallest.
    posmaps: Vec<TreeOram>,
    onchip: SparseLeafMap,
    rng: SplitMix64,
    stats: OramStats,
    /// Data-tree paths whose write-back (eviction) has been deferred by
    /// a `*_deferred` access, FIFO. Drained by
    /// [`RecursivePathOram::drain_eviction`].
    pending_evictions: VecDeque<Leaf>,
    /// Reusable scratch for the covering posmap block indices of one
    /// access (one entry per recursion level).
    covering_scratch: Vec<u64>,
    /// Reusable scratch for one dummy access's batched leaf draws.
    dummy_leaves: Vec<Leaf>,
}

impl std::fmt::Debug for RecursivePathOram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecursivePathOram")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

impl RecursivePathOram {
    /// Builds an ORAM from `config`.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error if `config` fails
    /// [`OramConfig::validate`].
    pub fn new(config: OramConfig) -> Result<Self, String> {
        config.validate()?;
        let key = SymmetricKey::from_seed(config.seed);
        let data = TreeOram::new(
            config.data,
            DefaultPayload::Zeros,
            Prf::new(key, b"fingerprint/data"),
        );
        let entries = config.entries_per_posmap_block();
        let mut posmaps = Vec::with_capacity(config.posmaps.len());
        // posmaps[i] stores the positions of the tree "below" it:
        // below posmaps[0] is the data tree; below posmaps[i] is
        // posmaps[i-1].
        let mut child_leaf_count = config.data.leaf_count();
        for (i, geom) in config.posmaps.iter().enumerate() {
            let label = format!("posmap{i}");
            posmaps.push(TreeOram::new(
                *geom,
                DefaultPayload::PosmapPrf {
                    prf: Prf::new(key, label.as_bytes()),
                    entries_per_block: entries,
                    child_leaf_count,
                },
                Prf::new(key, format!("fingerprint/{label}").as_bytes()),
            ));
            child_leaf_count = geom.leaf_count();
        }
        let smallest_leaves = config
            .posmaps
            .last()
            .expect("validated: non-empty")
            .leaf_count();
        let onchip = SparseLeafMap::new(Prf::new(key, b"onchip"), smallest_leaves);
        let rng_seed = config.seed ^ 0x5EAF_5EED;
        Ok(Self {
            config,
            data,
            posmaps,
            onchip,
            rng: SplitMix64::new(rng_seed),
            stats: OramStats::default(),
            pending_evictions: VecDeque::new(),
            covering_scratch: Vec::new(),
            dummy_leaves: Vec::new(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &OramConfig {
        &self.config
    }

    /// Reads the cache line at block address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` exceeds [`OramConfig::data_block_capacity`].
    pub fn read(&mut self, addr: u64) -> Vec<u8> {
        self.access(addr, OramOp::Read, None, false)
    }

    /// As [`RecursivePathOram::read`], discarding the payload: the same
    /// trees move the same bytes, but no copy of the cache line is
    /// materialized. The multi-tenant host's serving datapath consumes
    /// only the access's *timing*, so its read path stays allocation-free.
    pub fn read_discard(&mut self, addr: u64) {
        self.access_inner(addr, OramOp::Read, None, false, false);
    }

    /// As [`RecursivePathOram::read_deferred`], discarding the payload
    /// (see [`RecursivePathOram::read_discard`]).
    pub fn read_discard_deferred(&mut self, addr: u64) {
        self.access_inner(addr, OramOp::Read, None, true, false);
    }

    /// Writes the cache line at block address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range or `data` is not one data block
    /// long.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        self.access_inner(addr, OramOp::Write, Some(data), false, false);
    }

    /// As [`RecursivePathOram::read`], but the data tree's path
    /// write-back is deferred into the background eviction queue
    /// (posmap trees still evict inline — their paths are small and
    /// their lookups form the pipeline's front stages). The caller
    /// drains the queue via [`RecursivePathOram::drain_eviction`].
    pub fn read_deferred(&mut self, addr: u64) -> Vec<u8> {
        self.access(addr, OramOp::Read, None, true)
    }

    /// As [`RecursivePathOram::write`], with the data-tree eviction
    /// deferred (see [`RecursivePathOram::read_deferred`]).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range or `data` is not one data block
    /// long.
    pub fn write_deferred(&mut self, addr: u64, data: &[u8]) {
        self.access_inner(addr, OramOp::Write, Some(data), true, false);
    }

    /// Performs an indistinguishable dummy access (§1.1.2): a random path
    /// is read and written in every tree, with all the same data movement
    /// and re-encryption as a real access.
    pub fn dummy_access(&mut self) {
        self.dummy(false);
    }

    /// As [`RecursivePathOram::dummy_access`], with the data-tree
    /// eviction deferred (see [`RecursivePathOram::read_deferred`]) —
    /// dummies and real accesses must stay indistinguishable, so a
    /// pipelined controller defers both the same way.
    pub fn dummy_access_deferred(&mut self) {
        self.dummy(true);
    }

    fn dummy(&mut self, defer: bool) {
        // Batch the PRNG draws up front (same draw order as ever:
        // posmap chain smallest-first, then the data tree) so the hot
        // loop below is pure tree work; the scratch is reused across
        // dummies.
        self.dummy_leaves.clear();
        for i in (0..self.posmaps.len()).rev() {
            self.dummy_leaves.push(Leaf(
                self.rng.next_below(self.posmaps[i].geometry().leaf_count()),
            ));
        }
        let leaf = Leaf(self.rng.next_below(self.data.geometry().leaf_count()));
        for (j, i) in (0..self.posmaps.len()).rev().enumerate() {
            let posmap_leaf = self.dummy_leaves[j];
            self.posmaps[i].dummy_access(posmap_leaf);
        }
        if defer {
            self.data.dummy_access_deferred(leaf);
            self.pending_evictions.push_back(leaf);
            self.stats.deferred_evictions += 1;
        } else {
            self.data.dummy_access(leaf);
        }
        self.stats.dummy_accesses += 1;
        self.stats.bytes_moved += self.config.bytes_per_access();
    }

    /// Completes the oldest deferred data-tree eviction, if any. Returns
    /// whether one was drained. After every pending eviction has drained,
    /// bucket ciphertext fingerprints (the §3.2 observable) match what a
    /// serial controller would have produced for the same access
    /// sequence — deferral reorders write-backs, it never skips one.
    pub fn drain_eviction(&mut self) -> bool {
        match self.pending_evictions.pop_front() {
            Some(leaf) => {
                self.data.evict_path(leaf);
                self.stats.eviction_drains += 1;
                true
            }
            None => false,
        }
    }

    /// Drains every pending deferred eviction (oldest first).
    pub fn drain_evictions(&mut self) {
        while self.drain_eviction() {}
    }

    /// Number of data-tree evictions currently deferred.
    pub fn pending_evictions(&self) -> usize {
        self.pending_evictions.len()
    }

    /// Current occupancy of the *data tree's* stash — the one deferred
    /// evictions grow. Bounded-deferral controllers watch this.
    pub fn data_stash_len(&self) -> usize {
        self.data.stash_len()
    }

    /// Current stash occupancy summed over every tree (data + posmaps) —
    /// the controller-wide on-chip block count perf sessions sample each
    /// round. The data tree dominates under deferred eviction; posmap
    /// stashes drain inline and contribute only transient occupancy.
    pub fn total_stash_len(&self) -> usize {
        self.data.stash_len() + self.posmaps.iter().map(|p| p.stash_len()).sum::<usize>()
    }

    /// The staged timing decomposition of one access of this ORAM over
    /// `ddr` (see [`AccessPlan`]): per-posmap-level costs in recursion
    /// order, data-path read, and the (deferrable) eviction stage.
    pub fn access_plan(&self, ddr: &DdrConfig) -> AccessPlan {
        AccessPlan::derive(&self.config, ddr)
    }

    fn access(&mut self, addr: u64, op: OramOp, data: Option<&[u8]>, defer: bool) -> Vec<u8> {
        self.access_inner(addr, op, data, defer, true)
            .expect("requested result")
    }

    /// One full recursive access. `want_result` controls whether the data
    /// block's payload is cloned out — the tree and PRNG work is
    /// byte-identical either way, so discard-mode callers (the host's
    /// serving datapath) get the same timing and DRAM image with zero
    /// payload allocation.
    fn access_inner(
        &mut self,
        addr: u64,
        op: OramOp,
        data: Option<&[u8]>,
        defer: bool,
        want_result: bool,
    ) -> Option<Vec<u8>> {
        assert!(
            addr < self.config.data_block_capacity(),
            "address {addr} beyond ORAM capacity {}",
            self.config.data_block_capacity()
        );
        let entries = self.config.entries_per_posmap_block() as u64;

        // Block indices at each recursion level, data-level first.
        // posmap block covering data block `a` is `a / entries`, etc.
        let mut covering = std::mem::take(&mut self.covering_scratch);
        covering.clear();
        let mut b = addr;
        for _ in &self.posmaps {
            b /= entries;
            covering.push(b);
        }
        // covering[i] = block index within posmaps[i].

        // 1. On-chip posmap: leaf of the smallest posmap ORAM's block.
        let smallest = self.posmaps.len() - 1;
        let top_block = BlockId(covering[smallest]);
        let new_top_leaf = Leaf(
            self.rng
                .next_below(self.posmaps[smallest].geometry().leaf_count()),
        );
        let top_leaf = self.onchip.set(top_block, new_top_leaf);

        // 2. Walk down the posmap chain. Reading posmaps[i] yields the
        //    leaf for the block in the tree below (posmaps[i-1] or data).
        let mut leaf_for_below = Leaf(0);
        let mut cur_leaf = top_leaf;
        let mut cur_new = new_top_leaf;
        for i in (0..self.posmaps.len()).rev() {
            let block = BlockId(covering[i]);
            let below_index = if i == 0 { addr } else { covering[i - 1] };
            let slot = (below_index % entries) as usize;
            let below_leaves = if i == 0 {
                self.data.geometry().leaf_count()
            } else {
                self.posmaps[i - 1].geometry().leaf_count()
            };
            let new_below_leaf = Leaf(self.rng.next_below(below_leaves));
            let mut old_below_leaf = Leaf(0);
            // The posmap block's payload is consumed inside the closure;
            // the quiet access avoids cloning it back out.
            self.posmaps[i].access_update_quiet(block, cur_leaf, cur_new, |payload| {
                let off = slot * POSMAP_ENTRY_BYTES;
                let bytes: [u8; 4] = payload[off..off + 4]
                    .try_into()
                    .expect("entry within block");
                old_below_leaf = Leaf(u64::from(u32::from_le_bytes(bytes)));
                payload[off..off + 4].copy_from_slice(&(new_below_leaf.0 as u32).to_le_bytes());
            });
            leaf_for_below = old_below_leaf;
            // Prepare next iteration: the tree below is accessed with the
            // leaf we just read, remapped to the one we just installed.
            cur_leaf = leaf_for_below;
            cur_new = new_below_leaf;
        }
        self.covering_scratch = covering;

        // 3. Data ORAM access (eviction inline or deferred).
        let result = match (op, data) {
            (OramOp::Write, Some(bytes)) => {
                assert_eq!(
                    bytes.len(),
                    self.data.geometry().block_bytes(),
                    "payload must be block-sized"
                );
                if defer {
                    self.data
                        .access_update_deferred_quiet(BlockId(addr), cur_leaf, cur_new, |p| {
                            p.copy_from_slice(bytes)
                        });
                } else {
                    self.data
                        .access_update_quiet(BlockId(addr), cur_leaf, cur_new, |p| {
                            p.copy_from_slice(bytes)
                        });
                }
                None
            }
            (OramOp::Read, _) => {
                if defer {
                    if want_result {
                        Some(self.data.access_update_deferred(
                            BlockId(addr),
                            cur_leaf,
                            cur_new,
                            |_| {},
                        ))
                    } else {
                        self.data.access_update_deferred_quiet(
                            BlockId(addr),
                            cur_leaf,
                            cur_new,
                            |_| {},
                        );
                        None
                    }
                } else if want_result {
                    Some(self.data.read(BlockId(addr), cur_leaf, cur_new))
                } else {
                    self.data
                        .access_update_quiet(BlockId(addr), cur_leaf, cur_new, |_| {});
                    None
                }
            }
            (OramOp::Write, None) => unreachable!("write always carries data"),
        };
        if defer {
            self.pending_evictions.push_back(cur_leaf);
            self.stats.deferred_evictions += 1;
        }
        let _ = leaf_for_below;

        self.stats.real_accesses += 1;
        self.stats.bytes_moved += self.config.bytes_per_access();
        self.stats.stash_peak = self.stats.stash_peak.max(self.data.stats().stash_peak).max(
            self.posmaps
                .iter()
                .map(|t| t.stats().stash_peak)
                .max()
                .unwrap_or(0),
        );
        result
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> OramStats {
        let mut s = self.stats;
        s.stash_peak = s.stash_peak.max(self.data.stats().stash_peak).max(
            self.posmaps
                .iter()
                .map(|t| t.stats().stash_peak)
                .max()
                .unwrap_or(0),
        );
        s
    }

    /// Ciphertext fingerprint of the *data tree's root bucket* — the §3.2
    /// probe target. Changes on every access of any kind.
    pub fn root_fingerprint(&self) -> u64 {
        self.data.root_fingerprint()
    }

    /// Fingerprint of an arbitrary data-tree bucket.
    pub fn bucket_fingerprint(&self, node: NodeIndex) -> u64 {
        self.data.bucket_fingerprint(node)
    }

    /// Checks the Path ORAM invariant in every tree. Test/debug helper.
    ///
    /// # Panics
    ///
    /// Panics if any tree violates the invariant.
    pub fn check_invariants(&self) {
        self.data.check_invariant();
        for t in &self.posmaps {
            t.check_invariant();
        }
    }

    /// Peak stash occupancy across all trees.
    pub fn stash_peak(&self) -> usize {
        self.stats().stash_peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small() -> RecursivePathOram {
        RecursivePathOram::new(OramConfig::small()).expect("valid")
    }

    #[test]
    fn fresh_reads_are_zero() {
        let mut o = small();
        assert_eq!(o.read(0), vec![0u8; 64]);
        assert_eq!(o.read(100), vec![0u8; 64]);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut o = small();
        o.write(42, &[7u8; 64]);
        assert_eq!(o.read(42), vec![7u8; 64]);
    }

    #[test]
    fn total_stash_spans_data_and_posmap_trees() {
        let mut o = small();
        for i in 0..32u64 {
            o.write(i, &[i as u8; 64]);
        }
        assert!(o.total_stash_len() >= o.data_stash_len());
        // Deferred accesses grow the data stash; the total tracks it.
        for i in 0..16u64 {
            o.write_deferred(i, &[1u8; 64]);
        }
        assert!(o.total_stash_len() >= o.data_stash_len());
        assert!(o.data_stash_len() > 0);
    }

    #[test]
    fn many_blocks_roundtrip_with_invariants() {
        let mut o = small();
        for i in 0..128u64 {
            o.write(i, &[i as u8; 64]);
        }
        o.check_invariants();
        for i in (0..128u64).rev() {
            assert_eq!(o.read(i), vec![i as u8; 64], "block {i}");
        }
        o.check_invariants();
    }

    #[test]
    fn repeated_access_remaps() {
        // Accessing the same block repeatedly must keep working (the
        // position map is updated on every access).
        let mut o = small();
        o.write(9, &[1u8; 64]);
        for _ in 0..50 {
            assert_eq!(o.read(9), vec![1u8; 64]);
        }
        o.check_invariants();
    }

    #[test]
    fn dummy_accesses_preserve_data_and_count_separately() {
        let mut o = small();
        o.write(5, &[3u8; 64]);
        for _ in 0..20 {
            o.dummy_access();
        }
        assert_eq!(o.read(5), vec![3u8; 64]);
        let s = o.stats();
        assert_eq!(s.dummy_accesses, 20);
        assert_eq!(s.real_accesses, 2);
        assert_eq!(s.bytes_moved, 22 * o.config().bytes_per_access());
    }

    #[test]
    fn root_fingerprint_changes_on_real_and_dummy() {
        let mut o = small();
        let f0 = o.root_fingerprint();
        o.read(0);
        let f1 = o.root_fingerprint();
        o.dummy_access();
        let f2 = o.root_fingerprint();
        assert_ne!(f0, f1);
        assert_ne!(f1, f2);
    }

    #[test]
    #[should_panic(expected = "beyond ORAM capacity")]
    fn out_of_range_address_panics() {
        small().read(u64::MAX);
    }

    #[test]
    fn deferred_accesses_roundtrip_under_bounded_queue() {
        let mut o = small();
        for i in 0..32u64 {
            o.write_deferred(i, &[i as u8; 64]);
            while o.pending_evictions() > 4 {
                assert!(o.drain_eviction());
            }
        }
        o.check_invariants(); // stash residency is always legal
        for i in (0..32u64).rev() {
            assert_eq!(o.read_deferred(i), vec![i as u8; 64], "block {i}");
            while o.pending_evictions() > 4 {
                o.drain_eviction();
            }
        }
        o.drain_evictions();
        assert_eq!(o.pending_evictions(), 0);
        assert!(!o.drain_eviction(), "drained queue reports empty");
        o.check_invariants();
        let s = o.stats();
        assert_eq!(s.deferred_evictions, 64);
        assert_eq!(s.eviction_drains, 64);
        assert_eq!(s.pending_evictions(), 0);
    }

    #[test]
    fn deferred_fingerprints_match_serial_after_drain() {
        // The §3.2 observable (bucket ciphertexts) must not betray the
        // pipelining: after all deferred evictions drain, every bucket
        // has been re-encrypted exactly as many times as under a serial
        // controller running the same access sequence.
        let mut serial = small();
        let mut deferred = small();
        let mut rng = SplitMix64::new(0xFEED);
        for step in 0..60u64 {
            match rng.next_below(3) {
                0 => {
                    let addr = rng.next_below(100);
                    let val = vec![step as u8; 64];
                    serial.write(addr, &val);
                    deferred.write_deferred(addr, &val);
                }
                1 => {
                    let addr = rng.next_below(100);
                    assert_eq!(serial.read(addr), deferred.read_deferred(addr));
                }
                _ => {
                    serial.dummy_access();
                    deferred.dummy_access_deferred();
                }
            }
            while deferred.pending_evictions() > 3 {
                deferred.drain_eviction();
            }
        }
        deferred.drain_evictions();
        assert_eq!(serial.root_fingerprint(), deferred.root_fingerprint());
        for node in [0u64, 1, 2, 5, 12, 40] {
            assert_eq!(
                serial.bucket_fingerprint(NodeIndex(node)),
                deferred.bucket_fingerprint(NodeIndex(node)),
                "bucket {node}"
            );
        }
        serial.check_invariants();
        deferred.check_invariants();
    }

    #[test]
    fn paper_config_instantiates_lazily() {
        let mut o = RecursivePathOram::new(OramConfig::paper()).expect("valid");
        // 2^26 blocks addressable; pick one near the top of the range.
        let addr = (1u64 << 26) - 5;
        o.write(addr, &[9u8; 64]);
        assert_eq!(o.read(addr), vec![9u8; 64]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Random mixed workload against a HashMap oracle, with dummy
        /// accesses interleaved, invariants checked, stash bounded.
        #[test]
        fn prop_matches_oracle(seed in any::<u64>(), ops in 1usize..120) {
            let mut o = small();
            let mut oracle: std::collections::HashMap<u64, Vec<u8>> =
                std::collections::HashMap::new();
            let mut rng = SplitMix64::new(seed);
            let addr_space = 200u64;
            for step in 0..ops {
                match rng.next_below(4) {
                    0 => {
                        let addr = rng.next_below(addr_space);
                        let val = vec![(step as u8) ^ 0x5A; 64];
                        o.write(addr, &val);
                        oracle.insert(addr, val);
                    }
                    1 | 2 => {
                        let addr = rng.next_below(addr_space);
                        let got = o.read(addr);
                        let expect = oracle.get(&addr).cloned().unwrap_or(vec![0u8; 64]);
                        prop_assert_eq!(got, expect);
                    }
                    _ => o.dummy_access(),
                }
            }
            o.check_invariants();
            prop_assert!(o.stash_peak() < 64, "stash peak {}", o.stash_peak());
        }
    }
}
