//! Configuration of the full (recursive) Path ORAM.

use crate::geometry::TreeGeometry;
use otc_crypto::SplitMix64;

/// Bytes per position-map entry as stored in recursive posmap blocks.
pub const POSMAP_ENTRY_BYTES: usize = 4;

/// Configuration for a [`crate::RecursivePathOram`].
///
/// The default reproduces §9.1.2: a 4 GB-address-space data ORAM with a
/// 1 GB working set, Z = 3 everywhere, 64 B data blocks, 3 levels of
/// recursion with 32 B posmap blocks — which works out to 758 sixteen-byte
/// chunks per path direction (12.1 KB), 24.2 KB per access, and (with
/// [`otc_dram::DdrConfig::default`]) a 1488-CPU-cycle access latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OramConfig {
    /// Geometry of the data ORAM tree.
    pub data: TreeGeometry,
    /// Geometries of the recursive position-map ORAMs, ordered from the
    /// one holding the *data* ORAM's positions (`posmaps[0]`) to the
    /// smallest one (whose own positions live on-chip).
    pub posmaps: Vec<TreeGeometry>,
    /// Seed from which all ORAM-internal randomness (leaf remaps,
    /// fingerprints, default positions) derives. Fixed seed → bit-for-bit
    /// reproducible experiments.
    pub seed: u64,
}

impl Default for OramConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl OramConfig {
    /// The paper's configuration (§9.1.2). See [`OramConfig`] docs.
    pub fn paper() -> Self {
        Self {
            data: TreeGeometry::new(26, 3, 64, 16),
            posmaps: vec![
                TreeGeometry::new(23, 3, 32, 16),
                TreeGeometry::new(20, 3, 32, 16),
                TreeGeometry::new(17, 3, 32, 16),
            ],
            seed: 0x07A3_5EED,
        }
    }

    /// A small configuration for unit tests and examples: a few thousand
    /// blocks, same structure (3 recursion levels), fast to exercise
    /// exhaustively.
    pub fn small() -> Self {
        Self {
            data: TreeGeometry::new(8, 3, 64, 16),
            posmaps: vec![
                TreeGeometry::new(6, 3, 32, 16),
                TreeGeometry::new(4, 3, 32, 16),
                TreeGeometry::new(3, 3, 32, 16),
            ],
            seed: 0x5EED,
        }
    }

    /// Replaces the randomness seed. Every ORAM built from the result
    /// draws leaf remaps, fingerprints and default positions from the new
    /// seed — required when instantiating *several* ORAMs from one base
    /// geometry (a sharded backend): shards sharing a seed would produce
    /// correlated position maps, which an adversary observing two shards
    /// could cross-reference.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The configuration for shard `index` of a sharded deployment built
    /// from this base geometry: same trees, a shard-unique seed (a
    /// [`SplitMix64`] draw keyed on base seed and index) so shards are
    /// pairwise independent.
    pub fn shard(&self, index: u64) -> Self {
        let seed = SplitMix64::new(self.seed ^ index.wrapping_add(1).rotate_left(32)).next_u64();
        self.clone().with_seed(seed)
    }

    /// Position entries per posmap block (8 with 32 B blocks and 4 B
    /// entries — the recursion fan-out).
    pub fn entries_per_posmap_block(&self) -> usize {
        let b = self
            .posmaps
            .first()
            .map(|g| g.block_bytes())
            .unwrap_or(self.data.block_bytes());
        b / POSMAP_ENTRY_BYTES
    }

    /// Number of addressable data blocks (the ORAM's logical capacity).
    ///
    /// With the paper geometry this is 2^26 blocks × 64 B = 4 GB.
    pub fn data_block_capacity(&self) -> u64 {
        // One tree level deeper than the leaves: standard 2-blocks-per-
        // leaf nominal load (2^26 blocks over 2^25 leaves by default).
        self.data.leaf_count() * 2
    }

    /// Bytes of addressable capacity.
    pub fn capacity_bytes(&self) -> u64 {
        self.data_block_capacity() * self.data.block_bytes() as u64
    }

    /// Total buckets across all trees (row activations per access charge
    /// one per bucket on each accessed path).
    pub fn total_path_buckets(&self) -> u64 {
        self.data.levels() as u64 + self.posmaps.iter().map(|g| g.levels() as u64).sum::<u64>()
    }

    /// Bytes moved per ORAM access in one direction (path read *or*
    /// write): the sum over all trees of their path bytes.
    pub fn bytes_per_direction(&self) -> u64 {
        self.data.path_bytes() + self.posmaps.iter().map(|g| g.path_bytes()).sum::<u64>()
    }

    /// Bytes moved per ORAM access (read + write back).
    pub fn bytes_per_access(&self) -> u64 {
        2 * self.bytes_per_direction()
    }

    /// Validates internal consistency (posmap chain covers the data
    /// ORAM's position entries). Returns a human-readable error rather
    /// than panicking so builders can surface it.
    pub fn validate(&self) -> Result<(), String> {
        if self.posmaps.is_empty() {
            return Err("at least one recursive posmap level is required".into());
        }
        let entries = self.entries_per_posmap_block() as u64;
        if entries == 0 {
            return Err("posmap blocks must hold at least one entry".into());
        }
        // Each level must be able to address the blocks of the level below.
        let mut blocks_below = self.data_block_capacity();
        for (i, pm) in self.posmaps.iter().enumerate() {
            let pm_blocks = blocks_below.div_ceil(entries);
            let pm_capacity = pm.leaf_count() * 2;
            if pm_capacity < pm_blocks {
                return Err(format!(
                    "posmap level {i} holds {pm_capacity} blocks but needs {pm_blocks}"
                ));
            }
            blocks_below = pm_blocks;
        }
        Ok(())
    }

    /// Number of entries the on-chip position map must hold (positions of
    /// the smallest posmap ORAM's blocks).
    pub fn onchip_entries(&self) -> u64 {
        let entries = self.entries_per_posmap_block() as u64;
        let mut blocks = self.data_block_capacity();
        for _ in &self.posmaps {
            blocks = blocks.div_ceil(entries);
        }
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_validates() {
        OramConfig::paper().validate().expect("paper config valid");
    }

    #[test]
    fn small_config_validates() {
        OramConfig::small().validate().expect("small config valid");
    }

    #[test]
    fn paper_chunk_count_matches_paper() {
        // §9.1.2: 12.1 KB per direction = 758 sixteen-byte chunks;
        // 24.2 KB per access.
        let c = OramConfig::paper();
        assert_eq!(c.bytes_per_direction(), 12_128);
        assert_eq!(c.bytes_per_direction() / 16, 758);
        assert_eq!(c.bytes_per_access(), 24_256);
    }

    #[test]
    fn paper_capacity_is_4gb() {
        let c = OramConfig::paper();
        assert_eq!(c.capacity_bytes(), 4 << 30);
    }

    #[test]
    fn paper_path_buckets() {
        // 26 + 23 + 20 + 17 = 86 buckets per accessed path set.
        assert_eq!(OramConfig::paper().total_path_buckets(), 86);
    }

    #[test]
    fn onchip_posmap_is_small() {
        let c = OramConfig::paper();
        // 2^26 blocks / 8^3 = 2^17 on-chip entries — ~0.5 MB of u32s in
        // the simulator, a few hundred KB of packed bits in hardware.
        assert_eq!(c.onchip_entries(), 1 << 17);
    }

    #[test]
    fn recursion_fanout_is_8() {
        assert_eq!(OramConfig::paper().entries_per_posmap_block(), 8);
    }

    #[test]
    fn invalid_config_reports_error() {
        let mut c = OramConfig::small();
        c.posmaps = vec![TreeGeometry::new(2, 3, 32, 16)]; // far too small
        assert!(c.validate().is_err());
    }
}
