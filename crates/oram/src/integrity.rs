//! Integrity verification for Path ORAM (extension).
//!
//! The paper's threat model explicitly defers tampering: "we do not add
//! mechanisms to detect when/if an adversary tampers with the contents of
//! the DRAM … This issue is addressed for Path ORAM in [25]" (§4.3), and
//! §10's certified-program mitigation *assumes* "that ORAM is integrity
//! verified [25]". This module supplies that assumed substrate: a sparse
//! Merkle tree mirroring the ORAM tree, with one leaf digest per bucket.
//!
//! Design notes:
//!
//! * The authenticated value per bucket is a digest of the bucket's
//!   (simulated) ciphertext — in this stack, the node index and its
//!   probabilistic-encryption counter, which uniquely identify the bytes
//!   an adversary could overwrite or roll back.
//! * Like the ORAM itself, the tree is *lazily materialized*: an
//!   untouched subtree's digest is a deterministic function of its depth
//!   ("default digests", as in sparse Merkle trees), so paper-scale trees
//!   (2^26 − 1 buckets) cost memory proportional to the buckets actually
//!   written.
//! * Verifying or updating one ORAM path touches exactly the path's
//!   buckets plus their siblings — the same DRAM locality the ORAM access
//!   already has, which is why [25] can fold verification into the access
//!   pipeline with modest overhead.
//!
//! The digest function is the simulation-grade keyed hash from
//! `otc-crypto` (see that crate's security disclaimer); the *protocol*
//! (what is hashed, when, and what detects what) is the faithful part.

use crate::geometry::TreeGeometry;
use crate::types::NodeIndex;
use otc_crypto::{Prf, SymmetricKey};
use std::collections::HashMap;

/// A digest over one tree node (bucket leaf digests and internal combine
/// digests share this type).
pub type Digest = u64;

/// Result of verifying a path against the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verification {
    /// Path digests chain to the trusted root.
    Valid,
    /// Mismatch at the given tree node: the DRAM contents were modified
    /// or rolled back.
    TamperedAt(NodeIndex),
}

/// Sparse Merkle tree over the ORAM's buckets.
///
/// The ORAM tree of height `h` has `2^(h+1) − 1` buckets; the integrity
/// tree assigns each bucket a leaf digest and hashes pairs upward. The
/// root digest lives on-chip (trusted); everything else conceptually
/// lives in untrusted DRAM alongside the buckets.
///
/// # Example
///
/// ```
/// use otc_oram::{IntegrityTree, TreeGeometry, types::NodeIndex, Verification};
/// use otc_crypto::SymmetricKey;
///
/// let geom = TreeGeometry::new(4, 3, 64, 16);
/// let mut tree = IntegrityTree::new(&geom, SymmetricKey::from_seed(1));
/// // Record a bucket write (e.g. after an ORAM path write-back):
/// tree.record_bucket(NodeIndex(0), 1);
/// assert_eq!(tree.verify_bucket(NodeIndex(0), 1), Verification::Valid);
/// // A rollback to the old counter is detected:
/// assert_ne!(tree.verify_bucket(NodeIndex(0), 0), Verification::Valid);
/// ```
#[derive(Debug, Clone)]
pub struct IntegrityTree {
    /// Levels of the *integrity* tree: bucket_count leaves rounded up to
    /// a power of two.
    leaf_slots: u64,
    levels: u32,
    prf: Prf,
    /// Materialized digests, keyed by (level, index) packed into u64.
    /// Level 0 = leaves (one per bucket slot); level `levels-1` = root.
    nodes: HashMap<u64, Digest>,
    /// Default digest per level (digest of an all-untouched subtree).
    defaults: Vec<Digest>,
    /// The trusted on-chip root.
    root: Digest,
    verified_paths: u64,
    updated_paths: u64,
}

impl IntegrityTree {
    /// Builds the integrity tree for an ORAM of the given geometry.
    pub fn new(geom: &TreeGeometry, key: SymmetricKey) -> Self {
        let leaf_slots = geom.bucket_count().next_power_of_two();
        let levels = leaf_slots.trailing_zeros() + 1;
        let prf = Prf::new(key, b"integrity-tree");
        // Default digests: leaf default = digest of "never written"
        // (counter 0); each level above combines two defaults.
        let mut defaults = Vec::with_capacity(levels as usize);
        let mut d = prf.eval2(u64::MAX, 0); // untouched-bucket digest
        defaults.push(d);
        for _ in 1..levels {
            d = prf.eval2(d, d);
            defaults.push(d);
        }
        let root = defaults[levels as usize - 1];
        Self {
            leaf_slots,
            levels,
            prf,
            nodes: HashMap::new(),
            defaults,
            root,
            verified_paths: 0,
            updated_paths: 0,
        }
    }

    fn key_of(level: u32, index: u64) -> u64 {
        ((level as u64) << 58) | index
    }

    fn digest_at(&self, level: u32, index: u64) -> Digest {
        self.nodes
            .get(&Self::key_of(level, index))
            .copied()
            .unwrap_or(self.defaults[level as usize])
    }

    fn leaf_digest(&self, bucket: NodeIndex, counter: u64) -> Digest {
        if counter == 0 {
            self.defaults[0]
        } else {
            self.prf.eval2(bucket.0, counter)
        }
    }

    /// Records that `bucket` now carries encryption counter `counter`
    /// (called for every bucket a path write-back re-encrypts). Updates
    /// the digest chain up to the on-chip root.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is out of range for the geometry.
    pub fn record_bucket(&mut self, bucket: NodeIndex, counter: u64) {
        assert!(bucket.0 < self.leaf_slots, "bucket out of range");
        let mut level = 0u32;
        let mut index = bucket.0;
        let mut digest = self.leaf_digest(bucket, counter);
        self.nodes.insert(Self::key_of(0, index), digest);
        while level + 1 < self.levels {
            let sibling = self.digest_at(level, index ^ 1);
            let (left, right) = if index & 1 == 0 {
                (digest, sibling)
            } else {
                (sibling, digest)
            };
            level += 1;
            index >>= 1;
            digest = self.prf.eval2(left, right);
            self.nodes.insert(Self::key_of(level, index), digest);
        }
        self.root = digest;
        self.updated_paths += 1;
    }

    /// Verifies that `bucket`'s claimed `counter` (read back from
    /// untrusted DRAM) is consistent with the trusted root.
    pub fn verify_bucket(&mut self, bucket: NodeIndex, counter: u64) -> Verification {
        self.verified_paths += 1;
        if bucket.0 >= self.leaf_slots {
            return Verification::TamperedAt(bucket);
        }
        let mut level = 0u32;
        let mut index = bucket.0;
        let mut digest = self.leaf_digest(bucket, counter);
        if digest != self.digest_at(0, index) {
            return Verification::TamperedAt(bucket);
        }
        while level + 1 < self.levels {
            let sibling = self.digest_at(level, index ^ 1);
            let (left, right) = if index & 1 == 0 {
                (digest, sibling)
            } else {
                (sibling, digest)
            };
            level += 1;
            index >>= 1;
            digest = self.prf.eval2(left, right);
            if digest != self.digest_at(level, index) && level + 1 < self.levels {
                return Verification::TamperedAt(NodeIndex(index));
            }
        }
        if digest == self.root {
            Verification::Valid
        } else {
            Verification::TamperedAt(NodeIndex(0))
        }
    }

    /// The trusted on-chip root digest.
    pub fn root(&self) -> Digest {
        self.root
    }

    /// Simulates an adversary overwriting the *stored* digest of a bucket
    /// (e.g. flipping DRAM bits under the hash tree). Returns the old
    /// digest. Subsequent verifications of affected paths fail.
    pub fn tamper_stored_digest(&mut self, bucket: NodeIndex, forged: Digest) -> Option<Digest> {
        self.nodes.insert(Self::key_of(0, bucket.0), forged)
    }

    /// Number of digest nodes actually materialized (host-memory
    /// diagnostic; ≪ tree size for paper-scale geometries).
    pub fn materialized_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// (verify, update) operation counts, for overhead accounting.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.verified_paths, self.updated_paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tree() -> IntegrityTree {
        IntegrityTree::new(&TreeGeometry::new(4, 3, 64, 16), SymmetricKey::from_seed(7))
    }

    #[test]
    fn fresh_tree_verifies_untouched_buckets() {
        let mut t = tree();
        for b in [0u64, 3, 14] {
            assert_eq!(t.verify_bucket(NodeIndex(b), 0), Verification::Valid);
        }
    }

    #[test]
    fn recorded_counters_verify_and_rollbacks_fail() {
        let mut t = tree();
        t.record_bucket(NodeIndex(5), 9);
        assert_eq!(t.verify_bucket(NodeIndex(5), 9), Verification::Valid);
        // Replay of the previous version (counter 8) must be rejected.
        assert_ne!(t.verify_bucket(NodeIndex(5), 8), Verification::Valid);
        // And the never-written claim too.
        assert_ne!(t.verify_bucket(NodeIndex(5), 0), Verification::Valid);
    }

    #[test]
    fn untouched_buckets_stay_valid_after_other_updates() {
        let mut t = tree();
        t.record_bucket(NodeIndex(2), 1);
        t.record_bucket(NodeIndex(11), 4);
        assert_eq!(t.verify_bucket(NodeIndex(7), 0), Verification::Valid);
        assert_eq!(t.verify_bucket(NodeIndex(2), 1), Verification::Valid);
    }

    #[test]
    fn root_changes_on_every_update() {
        let mut t = tree();
        let r0 = t.root();
        t.record_bucket(NodeIndex(1), 1);
        let r1 = t.root();
        t.record_bucket(NodeIndex(1), 2);
        let r2 = t.root();
        assert_ne!(r0, r1);
        assert_ne!(r1, r2);
    }

    #[test]
    fn stored_digest_tampering_detected() {
        let mut t = tree();
        t.record_bucket(NodeIndex(6), 3);
        t.tamper_stored_digest(NodeIndex(6), 0xBAD);
        assert_ne!(t.verify_bucket(NodeIndex(6), 3), Verification::Valid);
    }

    #[test]
    fn paper_scale_geometry_is_lazy() {
        let geom = TreeGeometry::new(26, 3, 64, 16);
        let mut t = IntegrityTree::new(&geom, SymmetricKey::from_seed(1));
        t.record_bucket(NodeIndex(1_000_000), 1);
        // One path: ≤ levels digests.
        assert!(t.materialized_nodes() <= 28);
        assert_eq!(
            t.verify_bucket(NodeIndex(1_000_000), 1),
            Verification::Valid
        );
        assert_eq!(t.verify_bucket(NodeIndex(999_999), 0), Verification::Valid);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Random update sequences: the latest recorded counter always
        /// verifies, any other claimed counter never does.
        #[test]
        fn prop_latest_counter_verifies(seed in any::<u64>(), ops in 1usize..40) {
            let mut t = tree();
            let mut latest: std::collections::HashMap<u64, u64> =
                std::collections::HashMap::new();
            let mut rng = otc_crypto::SplitMix64::new(seed);
            for _ in 0..ops {
                let b = rng.next_below(15);
                let c = latest.get(&b).copied().unwrap_or(0) + 1;
                t.record_bucket(NodeIndex(b), c);
                latest.insert(b, c);
            }
            for (&b, &c) in &latest {
                prop_assert_eq!(t.verify_bucket(NodeIndex(b), c), Verification::Valid);
                prop_assert_ne!(t.verify_bucket(NodeIndex(b), c + 1), Verification::Valid);
                if c > 1 {
                    prop_assert_ne!(
                        t.verify_bucket(NodeIndex(b), c - 1),
                        Verification::Valid
                    );
                }
            }
        }
    }
}
