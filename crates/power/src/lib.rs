//! Energy/power model for the HPCA'14 reproduction — §9.1.3, §9.1.4 and
//! Table 2 of the paper.
//!
//! The paper's power methodology: count accesses to each on-chip
//! component, multiply by per-event energy coefficients (45 nm numbers
//! drawn from CACTI and published circuit papers), sum, and divide by
//! cycles. Dynamic energy only, except L1/L2 parasitic leakage. Each Path
//! ORAM access additionally charges the AES and stash SRAM per 16-byte
//! chunk moved plus the DRAM controller for its busy cycles — 984 nJ per
//! access at the paper's geometry.
//!
//! # Example
//!
//! ```
//! use otc_power::PowerModel;
//! use otc_sim::{DramBackend, SimConfig, Simulator};
//! use otc_sim::instr::{Instr, InstructionStream};
//!
//! struct Alu(u32);
//! impl InstructionStream for Alu {
//!     fn next_instr(&mut self) -> Instr {
//!         self.0 = (self.0 + 1) % 16;
//!         if self.0 == 0 { Instr::Branch { taken: true, target: 0x1000 } }
//!         else { Instr::IntAlu }
//!     }
//! }
//!
//! let stats = Simulator::new(SimConfig::default())
//!     .run(&mut Alu(0), &mut DramBackend::new(), 10_000);
//! let power = PowerModel::paper().power(&stats);
//! assert!(power.total_watts() > 0.0 && power.total_watts() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coefficients;
mod model;

pub use coefficients::EnergyCoefficients;
pub use model::{oram_access_energy_nj, EnergyBreakdown, PowerModel, PowerReport};
