//! Table 2's energy coefficients (45 nm), verbatim.

/// Per-event energy coefficients in nanojoules (Table 2 of the paper).
///
/// The ORAM-access energy is *derived* from these plus the access's chunk
/// count and DRAM-cycle occupancy — see
/// [`oram_access_energy_nj`](crate::oram_access_energy_nj), which
/// reproduces the paper's 984 nJ worked example (§9.1.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyCoefficients {
    /// ALU/FPU, per instruction.
    pub alu_fpu_per_instr: f64,
    /// Integer register file, per instruction.
    pub regfile_int_per_instr: f64,
    /// FP register file, per instruction.
    pub regfile_fp_per_instr: f64,
    /// Fetch buffer, per 256-bit read.
    pub fetch_buffer_read: f64,
    /// L1 I hit or refill, per cache line.
    pub l1i_access: f64,
    /// L1 D hit, per 64-bit access.
    pub l1d_hit: f64,
    /// L1 D refill, per cache line.
    pub l1d_refill: f64,
    /// L2 hit or refill, per cache line (dynamic).
    pub l2_access: f64,
    /// DRAM controller, per cache line (= cycle energy × 4 DRAM cycles of
    /// pin time for 64 B at 16 B/cycle).
    pub dram_ctrl_per_line: f64,
    /// DRAM controller, per DRAM cycle busy (from the PARDIS peak-power
    /// figure, §9.1.3).
    pub dram_ctrl_per_cycle: f64,
    /// L1 I parasitic leakage, per cycle.
    pub l1i_leak_per_cycle: f64,
    /// L1 D parasitic leakage, per cycle.
    pub l1d_leak_per_cycle: f64,
    /// L2 parasitic leakage, charged per hit/refill (as Table 2 does).
    pub l2_leak_per_access: f64,
    /// ORAM-controller AES, per 16-byte chunk.
    pub aes_per_chunk: f64,
    /// ORAM-controller stash SRAM, per 16-byte read or write.
    pub stash_per_chunk: f64,
}

impl Default for EnergyCoefficients {
    fn default() -> Self {
        Self::table2()
    }
}

impl EnergyCoefficients {
    /// The paper's Table 2 values.
    pub fn table2() -> Self {
        Self {
            alu_fpu_per_instr: 0.0148,
            regfile_int_per_instr: 0.0032,
            regfile_fp_per_instr: 0.0048,
            fetch_buffer_read: 0.0003,
            l1i_access: 0.162,
            l1d_hit: 0.041,
            l1d_refill: 0.320,
            l2_access: 0.810,
            dram_ctrl_per_line: 0.303,
            dram_ctrl_per_cycle: 0.076,
            l1i_leak_per_cycle: 0.018,
            l1d_leak_per_cycle: 0.019,
            l2_leak_per_access: 0.767,
            aes_per_chunk: 0.416,
            stash_per_chunk: 0.134,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_line_energy_consistent_with_cycle_energy() {
        // 64 B at 16 B/DRAM-cycle = 4 cycles; 4 × 0.076 ≈ 0.303 (§9.1.3).
        let c = EnergyCoefficients::table2();
        assert!((4.0 * c.dram_ctrl_per_cycle - c.dram_ctrl_per_line).abs() < 0.002);
    }
}
