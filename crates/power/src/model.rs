//! The power model: maps simulation statistics to Watts (§9.1.3–9.1.4).
//!
//! "To calculate Power (in Watts): we count all accesses made to each
//! component, multiply each count with its energy coefficient, sum all
//! products and divide by cycle count" — at the 1 GHz clock, nJ/cycle is
//! numerically nJ/ns = Watts, so the division is direct.

use crate::coefficients::EnergyCoefficients;
use otc_sim::SimStats;

/// Energy per full ORAM access, derived as in §9.1.4:
/// `chunks × (AES + stash) + dram_cycles × DRAM-controller cycle energy`.
///
/// # Example
///
/// ```
/// use otc_power::{oram_access_energy_nj, EnergyCoefficients};
///
/// // The paper's configuration: 2·758 chunks, 1984 DRAM cycles → ≈984 nJ.
/// let nj = oram_access_energy_nj(1516, 1984, &EnergyCoefficients::table2());
/// assert!((nj - 984.0).abs() < 2.0, "{nj}");
/// ```
pub fn oram_access_energy_nj(
    chunks_per_access: u64,
    dram_cycles_per_access: u64,
    c: &EnergyCoefficients,
) -> f64 {
    chunks_per_access as f64 * (c.aes_per_chunk + c.stash_per_chunk)
        + dram_cycles_per_access as f64 * c.dram_ctrl_per_cycle
}

/// Energy totals for one simulation, split the way Fig. 6 plots power:
/// non-main-memory components (the white-dashed bars) vs. the DRAM/ORAM
/// controllers (the colored bars).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Core, register files, fetch, caches, parasitic leakage — in nJ.
    pub chip_nj: f64,
    /// DRAM controller + ORAM controller — in nJ.
    pub memory_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nJ.
    pub fn total_nj(&self) -> f64 {
        self.chip_nj + self.memory_nj
    }
}

/// Average power over one simulation, in Watts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerReport {
    /// Non-main-memory power (Fig. 6's white-dashed bars).
    pub chip_watts: f64,
    /// DRAM/ORAM controller power (Fig. 6's colored bars).
    pub memory_watts: f64,
}

impl PowerReport {
    /// Total Watts.
    pub fn total_watts(&self) -> f64 {
        self.chip_watts + self.memory_watts
    }
}

/// The power model.
#[derive(Debug, Clone, Copy, Default)]
pub struct PowerModel {
    coefficients: EnergyCoefficients,
    /// nJ per ORAM access; configure via [`PowerModel::with_oram_access`]
    /// to match the active ORAM geometry (defaults to the paper's 984 nJ
    /// configuration).
    oram_access_nj: f64,
}

impl PowerModel {
    /// A model with Table 2 coefficients and the paper's ORAM geometry
    /// (1516 chunks / 1984 DRAM cycles per access).
    pub fn paper() -> Self {
        let c = EnergyCoefficients::table2();
        Self {
            coefficients: c,
            oram_access_nj: oram_access_energy_nj(1516, 1984, &c),
        }
    }

    /// Overrides the per-ORAM-access energy for a different geometry.
    pub fn with_oram_access(mut self, chunks: u64, dram_cycles: u64) -> Self {
        self.oram_access_nj = oram_access_energy_nj(chunks, dram_cycles, &self.coefficients);
        self
    }

    /// nJ charged per ORAM access under this model.
    pub fn oram_access_nj(&self) -> f64 {
        self.oram_access_nj
    }

    /// Computes the energy breakdown for a finished simulation.
    pub fn energy(&self, stats: &SimStats) -> EnergyBreakdown {
        let c = &self.coefficients;
        let comp = &stats.components;
        let instr_ops = (comp.int_alu_ops + comp.int_mul_ops + comp.int_div_ops + comp.fp_ops)
            as f64
            + stats.branches as f64; // branches use the ALU
        let mut chip = instr_ops * c.alu_fpu_per_instr;
        chip += comp.int_regfile_accesses as f64 * c.regfile_int_per_instr;
        chip += comp.fp_regfile_accesses as f64 * c.regfile_fp_per_instr;
        chip += comp.fetch_buffer_reads as f64 * c.fetch_buffer_read;
        chip += (comp.l1i_hits + comp.l1i_refills) as f64 * c.l1i_access;
        chip += comp.l1d_hits as f64 * c.l1d_hit;
        chip += comp.l1d_refills as f64 * c.l1d_refill;
        chip += comp.l2_accesses as f64 * (c.l2_access + c.l2_leak_per_access);
        chip += stats.cycles as f64 * (c.l1i_leak_per_cycle + c.l1d_leak_per_cycle);

        let memory = stats.backend.dram_ctrl_lines as f64 * c.dram_ctrl_per_line
            + stats.backend.oram_accesses as f64 * self.oram_access_nj;

        EnergyBreakdown {
            chip_nj: chip,
            memory_nj: memory,
        }
    }

    /// Computes average power in Watts (energy / cycles at 1 GHz).
    pub fn power(&self, stats: &SimStats) -> PowerReport {
        let e = self.energy(stats);
        let cycles = stats.cycles.max(1) as f64;
        PowerReport {
            chip_watts: e.chip_nj / cycles,
            memory_watts: e.memory_nj / cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otc_sim::{BackendEnergyProfile, ComponentCounts};

    fn stats_with(backend: BackendEnergyProfile, cycles: u64) -> SimStats {
        SimStats {
            cycles,
            instructions: cycles,
            backend,
            components: ComponentCounts {
                int_alu_ops: cycles,
                int_regfile_accesses: cycles,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn paper_oram_access_energy() {
        // §9.1.4: 2·758·(.416+.134) + 1984·.076 ≈ 984 nJ.
        let m = PowerModel::paper();
        assert!(
            (m.oram_access_nj() - 984.0).abs() < 2.0,
            "{}",
            m.oram_access_nj()
        );
    }

    #[test]
    fn oram_dominates_memory_power_when_busy() {
        let m = PowerModel::paper();
        // One ORAM access every 1744 cycles (rate 256 + OLAT 1488):
        // memory power ≈ 984/1744 ≈ 0.56 W — the scale of Fig. 6's
        // heaviest bars.
        let s = stats_with(
            BackendEnergyProfile {
                dram_ctrl_lines: 0,
                oram_accesses: 1_000,
                oram_dummy_accesses: 0,
            },
            1_744_000,
        );
        let p = m.power(&s);
        assert!((p.memory_watts - 0.564).abs() < 0.01, "{}", p.memory_watts);
    }

    #[test]
    fn dram_memory_power_is_small() {
        let m = PowerModel::paper();
        let s = stats_with(
            BackendEnergyProfile {
                dram_ctrl_lines: 1_000,
                oram_accesses: 0,
                oram_dummy_accesses: 0,
            },
            1_744_000,
        );
        let p = m.power(&s);
        assert!(p.memory_watts < 0.001);
    }

    #[test]
    fn chip_power_scales_with_activity_not_idle() {
        let m = PowerModel::paper();
        let busy = stats_with(BackendEnergyProfile::default(), 1_000_000);
        let mut idle = busy.clone();
        idle.components.int_alu_ops = 0;
        idle.components.int_regfile_accesses = 0;
        let p_busy = m.power(&busy);
        let p_idle = m.power(&idle);
        assert!(p_busy.chip_watts > p_idle.chip_watts);
        // Idle still pays L1 parasitic leakage.
        assert!(p_idle.chip_watts > 0.0);
    }

    #[test]
    fn breakdown_total_is_sum() {
        let m = PowerModel::paper();
        let s = stats_with(
            BackendEnergyProfile {
                dram_ctrl_lines: 10,
                oram_accesses: 10,
                oram_dummy_accesses: 5,
            },
            1_000,
        );
        let e = m.energy(&s);
        assert!((e.total_nj() - (e.chip_nj + e.memory_nj)).abs() < 1e-9);
        let p = m.power(&s);
        assert!((p.total_watts() - (p.chip_watts + p.memory_watts)).abs() < 1e-12);
    }

    #[test]
    fn custom_geometry_changes_oram_energy() {
        let small = PowerModel::paper().with_oram_access(100, 200);
        assert!(small.oram_access_nj() < PowerModel::paper().oram_access_nj());
    }
}
