//! A tiny deterministic pseudo-random generator used internally by the
//! crypto primitives (nonce generation, toy key generation).
//!
//! SplitMix64 is used because it is stateless-friendly, passes basic
//! statistical tests, and is trivially reproducible across platforms —
//! determinism is a hard requirement for the simulator (whole experiment
//! runs must be replayable bit-for-bit).

/// SplitMix64 pseudo-random number generator.
///
/// # Example
///
/// ```
/// use otc_crypto::SplitMix64;
///
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns the next pseudo-random value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift reduction; bias is negligible for simulation use.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(0xDEAD_BEEF);
        let mut b = SplitMix64::new(0xDEAD_BEEF);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_is_in_range() {
        let mut g = SplitMix64::new(99);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..50 {
                assert!(g.next_below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut g = SplitMix64::new(5);
        let mut buf = [0u8; 13];
        g.fill_bytes(&mut buf);
        // Extremely unlikely to be all zero if filled.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn reasonable_bit_dispersion() {
        // Not a statistical test suite, just a sanity check that the
        // generator is not obviously broken (e.g. constant high bits).
        let mut g = SplitMix64::new(42);
        let mut ones = 0u32;
        const N: usize = 1000;
        for _ in 0..N {
            ones += g.next_u64().count_ones();
        }
        let expected = (N as u32) * 32;
        let tol = (N as u32) * 2; // generous
        assert!(ones > expected - tol && ones < expected + tol);
    }
}
