//! Simulation-grade cryptographic primitives for the `oram-timing` stack.
//!
//! The HPCA'14 paper assumes an AES-128 engine with *fixed latency* inside
//! the ORAM controller (§4.1: "all encryption routines are fixed latency"),
//! a symmetric *session key* negotiated with the user (§5), probabilistic
//! encryption of ORAM buckets (§3), and an HMAC used to bind programs and
//! leakage parameters to user data (§8, §10).
//!
//! This crate provides functional stand-ins for all of those pieces:
//!
//! * [`BlockCipher`] — a 128-bit block cipher built from an ARX permutation.
//! * [`Prf`] — a keyed pseudo-random function (used e.g. for default ORAM
//!   leaf assignments).
//! * [`ProbCipher`] — probabilistic (nonce-counter) encryption; encrypting
//!   the same plaintext twice yields unrelated-looking ciphertexts, which
//!   is exactly the property the paper's §3.2 root-bucket timing probe
//!   relies on.
//! * [`Mac`] — a fixed-length message authentication code.
//! * [`keys`] — session-key negotiation and the run-once key register that
//!   defeats replay attacks (§8).
//! * [`latency`] — the fixed cycle costs charged for each primitive.
//!
//! # Security disclaimer
//!
//! **Nothing in this crate is cryptographically secure.** These primitives
//! exist so that the *architecture* around them can be simulated
//! faithfully: ciphertexts change on re-encryption, keys that are
//! "forgotten" render data undecryptable within the simulation, and every
//! operation has a deterministic, data-independent latency. Substituting a
//! real AES/HMAC implementation would not change any simulation result,
//! because no experiment in the paper depends on cryptanalytic strength.
//!
//! # Example
//!
//! ```
//! use otc_crypto::{ProbCipher, SymmetricKey};
//!
//! let key = SymmetricKey::from_seed(7);
//! let mut enc = ProbCipher::new(key);
//! let plaintext = [42u8; 64];
//! let c1 = enc.encrypt(&plaintext);
//! let c2 = enc.encrypt(&plaintext);
//! // Probabilistic: same plaintext, different ciphertexts.
//! assert_ne!(c1.bytes, c2.bytes);
//! assert_eq!(enc.decrypt(&c1), plaintext);
//! assert_eq!(enc.decrypt(&c2), plaintext);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cipher;
mod mac;
mod prf;
mod prob;
mod rng;

pub mod keys;
pub mod latency;

pub use cipher::{Block, BlockCipher};
pub use keys::{KeyRegister, ProcessorKeyPair, SealedKey, SymmetricKey};
pub use mac::{Mac, MacTag};
pub use prf::Prf;
pub use prob::{Ciphertext, ProbCipher};
pub use rng::SplitMix64;
