//! Probabilistic encryption.
//!
//! Path ORAM requires every bucket to be encrypted with *probabilistic*
//! encryption (§3): re-encrypting the same plaintext must yield a
//! completely different ciphertext, otherwise an observer could tell
//! whether a bucket's contents changed. The paper's §3.2 timing probe is
//! built directly on this property — every ORAM access rewrites the root
//! bucket, so its ciphertext bits flip on every access and an adversary
//! polling the root learns the access times.
//!
//! We implement counter-mode encryption over the [`crate::Prf`]: each
//! encryption draws a fresh nonce, and the keystream for chunk `i` is
//! `PRF(nonce, i)`.

use crate::keys::SymmetricKey;
use crate::prf::Prf;
use crate::rng::SplitMix64;

/// A probabilistically encrypted byte string together with its nonce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ciphertext {
    /// The per-encryption nonce (stored in the clear, as an IV would be).
    pub nonce: u64,
    /// The encrypted payload.
    pub bytes: Vec<u8>,
}

/// Probabilistic (nonce-counter mode) cipher.
///
/// See the [crate docs](crate) for the security disclaimer.
///
/// # Example
///
/// ```
/// use otc_crypto::{ProbCipher, SymmetricKey};
///
/// let mut enc = ProbCipher::new(SymmetricKey::from_seed(2));
/// let ct = enc.encrypt(b"bucket contents");
/// assert_eq!(enc.decrypt(&ct), b"bucket contents");
/// ```
#[derive(Debug, Clone)]
pub struct ProbCipher {
    prf: Prf,
    nonce_gen: SplitMix64,
}

impl ProbCipher {
    /// Creates a probabilistic cipher keyed with `key`.
    pub fn new(key: SymmetricKey) -> Self {
        Self {
            prf: Prf::new(key, b"prob-cipher"),
            nonce_gen: SplitMix64::new(key.material().rotate_left(13) ^ 0xA5A5_5A5A),
        }
    }

    /// Encrypts `plaintext` under a fresh nonce.
    pub fn encrypt(&mut self, plaintext: &[u8]) -> Ciphertext {
        let nonce = self.nonce_gen.next_u64();
        Ciphertext {
            nonce,
            bytes: self.xor_keystream(nonce, plaintext),
        }
    }

    /// Decrypts `ciphertext`.
    pub fn decrypt(&self, ciphertext: &Ciphertext) -> Vec<u8> {
        self.xor_keystream(ciphertext.nonce, &ciphertext.bytes)
    }

    fn xor_keystream(&self, nonce: u64, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len());
        for (i, chunk) in data.chunks(8).enumerate() {
            let ks = self.prf.eval2(nonce, i as u64).to_le_bytes();
            out.extend(chunk.iter().zip(ks.iter()).map(|(d, k)| d ^ k));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reencryption_differs() {
        let mut e = ProbCipher::new(SymmetricKey::from_seed(1));
        let c1 = e.encrypt(b"same");
        let c2 = e.encrypt(b"same");
        assert_ne!(c1.nonce, c2.nonce);
        assert_ne!(c1.bytes, c2.bytes);
    }

    #[test]
    fn empty_plaintext() {
        let mut e = ProbCipher::new(SymmetricKey::from_seed(1));
        let ct = e.encrypt(b"");
        assert!(ct.bytes.is_empty());
        assert!(e.decrypt(&ct).is_empty());
    }

    #[test]
    fn wrong_key_garbles() {
        let mut e1 = ProbCipher::new(SymmetricKey::from_seed(1));
        let e2 = ProbCipher::new(SymmetricKey::from_seed(2));
        let ct = e1.encrypt(b"some sensitive user data!!");
        assert_ne!(e2.decrypt(&ct), b"some sensitive user data!!");
    }

    #[test]
    fn ciphertext_length_matches() {
        let mut e = ProbCipher::new(SymmetricKey::from_seed(1));
        for len in [0usize, 1, 7, 8, 9, 15, 16, 63, 64, 65] {
            let pt = vec![0xAB; len];
            assert_eq!(e.encrypt(&pt).bytes.len(), len);
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(seed in any::<u64>(), pt in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut e = ProbCipher::new(SymmetricKey::from_seed(seed));
            let ct = e.encrypt(&pt);
            prop_assert_eq!(e.decrypt(&ct), pt);
        }

        #[test]
        fn prop_reencrypt_always_differs(seed in any::<u64>(),
                                         pt in proptest::collection::vec(any::<u8>(), 1..128)) {
            let mut e = ProbCipher::new(SymmetricKey::from_seed(seed));
            let c1 = e.encrypt(&pt);
            let c2 = e.encrypt(&pt);
            prop_assert_ne!(c1.bytes, c2.bytes);
        }
    }
}
