//! Key material and the session-key protocol of §5 and §8.
//!
//! The paper's replay-attack fix (§8) works like this:
//!
//! 1. The user generates a random symmetric key `K'`, encrypts it with the
//!    *processor's* public key, and sends it over.
//! 2. The processor decrypts `K'`, generates a fresh session key `K`,
//!    stores `K` in a dedicated on-chip register, and returns
//!    `encrypt_{K'}(K)` to the user.
//! 3. When the session terminates the processor **resets the register** —
//!    `K` is forgotten, `encrypt_K(D)` becomes undecryptable, and the
//!    server cannot replay the user's data under new leakage parameters.
//!
//! [`ProcessorKeyPair`], [`SealedKey`] and [`KeyRegister`] implement this
//! machinery. The public-key operation is simulated (see the crate-level
//! security disclaimer); what matters for the architecture experiments is
//! the *lifecycle*: once [`KeyRegister::forget`] runs, no object capable of
//! decrypting the session's data exists anywhere in the simulation.

use crate::rng::SplitMix64;

/// A 64-bit-material symmetric key (stands in for an AES-128 key).
///
/// Key material is deliberately *not* `Display`ed or serialized anywhere;
/// `Debug` prints a redacted form so keys don't leak into logs.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymmetricKey {
    material: u64,
}

impl SymmetricKey {
    /// Derives a key deterministically from a seed (for tests and
    /// reproducible simulations).
    pub fn from_seed(seed: u64) -> Self {
        let mut g = SplitMix64::new(seed ^ 0x6B65_795F_7365_6564); // "key_seed"
        Self {
            material: g.next_u64(),
        }
    }

    /// Generates a fresh key from an entropy source.
    pub fn generate(rng: &mut SplitMix64) -> Self {
        Self {
            material: rng.next_u64(),
        }
    }

    /// Raw key material (crate-internal: primitives need it; users of the
    /// simulation never should).
    pub(crate) fn material(self) -> u64 {
        self.material
    }
}

impl std::fmt::Debug for SymmetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SymmetricKey(<redacted>)")
    }
}

/// The processor's long-lived asymmetric key pair.
///
/// Simulated: "public" operations are a keyed transform whose inverse
/// requires the secret half. Good enough to model the protocol flow.
#[derive(Debug, Clone)]
pub struct ProcessorKeyPair {
    secret: u64,
}

/// A symmetric key sealed to a processor's public key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SealedKey {
    sealed: u64,
    checksum: u64,
}

/// The public half of a [`ProcessorKeyPair`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessorPublicKey {
    // In the simulation, sealing only needs a value both sides can relate
    // to the secret; unsealing requires the secret itself.
    pk: u64,
}

impl ProcessorKeyPair {
    /// Generates a key pair (e.g. at chip manufacturing time).
    pub fn generate(rng: &mut SplitMix64) -> Self {
        Self {
            secret: rng.next_u64(),
        }
    }

    /// Returns the public key, distributable to users.
    pub fn public_key(&self) -> ProcessorPublicKey {
        ProcessorPublicKey {
            pk: mix(self.secret ^ 0x7075_626C_6963), // "public"
        }
    }

    /// Unseals a key sealed to this processor's public key.
    ///
    /// Returns `None` if the sealed blob was not produced for this
    /// processor (models the decryption failing).
    pub fn unseal(&self, sealed: &SealedKey) -> Option<SymmetricKey> {
        let material = sealed.sealed ^ mix(self.secret ^ 0x7365_616C); // "seal"
        let expect = mix(material ^ self.public_key().pk);
        (expect == sealed.checksum).then_some(SymmetricKey { material })
    }
}

impl ProcessorPublicKey {
    /// Seals `key` so only the holder of the matching secret can recover it.
    ///
    /// The simulation needs the *sealing* side to not require the secret,
    /// so the blob is bound to the public key via a checksum and the
    /// payload is masked with a secret-derived pad known to the unsealing
    /// side. To keep the toy construction one-way from the adversary's
    /// perspective, the mask is re-derived by `unseal` from the secret.
    pub fn seal(&self, key: SymmetricKey, pair_hint: &ProcessorKeyPair) -> SealedKey {
        // A real implementation would be RSA/ECIES; the simulation routes
        // through the key pair to construct the mask (the user-side code in
        // `otc-core::session` holds only the public key and this function
        // is invoked through the protocol object, mirroring message flow).
        SealedKey {
            sealed: key.material ^ mix(pair_hint.secret ^ 0x7365_616C),
            checksum: mix(key.material ^ self.pk),
        }
    }
}

fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The dedicated on-chip register holding the session key `K` (§8).
///
/// `forget()` models the register reset at session termination: afterwards
/// the key is unrecoverable and any attempt to use it is a protocol error
/// surfaced as `None`.
///
/// # Example
///
/// ```
/// use otc_crypto::{KeyRegister, SymmetricKey};
///
/// let mut reg = KeyRegister::empty();
/// reg.load(SymmetricKey::from_seed(9));
/// assert!(reg.key().is_some());
/// reg.forget();
/// assert!(reg.key().is_none()); // session data now undecryptable
/// ```
#[derive(Debug, Clone, Default)]
pub struct KeyRegister {
    key: Option<SymmetricKey>,
    /// Number of times a key has been loaded (a real design might fuse
    /// this; we expose it so tests can assert single-use).
    loads: u32,
}

impl KeyRegister {
    /// An empty register (power-on state).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Loads a session key into the register.
    pub fn load(&mut self, key: SymmetricKey) {
        self.key = Some(key);
        self.loads += 1;
    }

    /// The current session key, if a session is active.
    pub fn key(&self) -> Option<SymmetricKey> {
        self.key
    }

    /// Resets the register, forgetting the session key (§8).
    pub fn forget(&mut self) {
        self.key = None;
    }

    /// How many sessions this register has ever held.
    pub fn load_count(&self) -> u32 {
        self.loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_unseal_roundtrip() {
        let mut rng = SplitMix64::new(77);
        let pair = ProcessorKeyPair::generate(&mut rng);
        let user_key = SymmetricKey::generate(&mut rng);
        let sealed = pair.public_key().seal(user_key, &pair);
        assert_eq!(pair.unseal(&sealed), Some(user_key));
    }

    #[test]
    fn unseal_with_wrong_processor_fails() {
        let mut rng = SplitMix64::new(78);
        let pair_a = ProcessorKeyPair::generate(&mut rng);
        let pair_b = ProcessorKeyPair::generate(&mut rng);
        let user_key = SymmetricKey::generate(&mut rng);
        let sealed = pair_a.public_key().seal(user_key, &pair_a);
        assert_eq!(pair_b.unseal(&sealed), None);
    }

    #[test]
    fn key_register_lifecycle() {
        let mut reg = KeyRegister::empty();
        assert!(reg.key().is_none());
        let k = SymmetricKey::from_seed(4);
        reg.load(k);
        assert_eq!(reg.key(), Some(k));
        reg.forget();
        assert!(reg.key().is_none());
        assert_eq!(reg.load_count(), 1);
    }

    #[test]
    fn debug_redacts_key_material() {
        let k = SymmetricKey::from_seed(1);
        assert_eq!(format!("{k:?}"), "SymmetricKey(<redacted>)");
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        assert_ne!(SymmetricKey::from_seed(1), SymmetricKey::from_seed(2));
    }
}
