//! Message authentication.
//!
//! The paper uses an HMAC in two protocol roles:
//!
//! * §8/§10: the user binds a certified program hash, the input data and
//!   the leakage parameters (`R`, `E`, `L`) together so the server cannot
//!   mix-and-match them across runs.
//! * §10: the user sends a per-session leakage limit `L` bound to the data.
//!
//! [`Mac`] provides `tag`/`verify` over arbitrary byte strings with a
//! fixed 128-bit tag. As with everything in this crate it is a
//! simulation-grade construction (keyed FNV-style compression into the
//! block cipher), not a real HMAC.

use crate::cipher::BlockCipher;
use crate::keys::SymmetricKey;

/// A 128-bit authentication tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacTag(pub [u8; 16]);

/// Keyed message authentication code.
///
/// # Example
///
/// ```
/// use otc_crypto::{Mac, SymmetricKey};
///
/// let mac = Mac::new(SymmetricKey::from_seed(42));
/// let tag = mac.tag(b"program-hash || data || R || E");
/// assert!(mac.verify(b"program-hash || data || R || E", &tag));
/// assert!(!mac.verify(b"tampered", &tag));
/// ```
#[derive(Debug, Clone)]
pub struct Mac {
    cipher: BlockCipher,
    k: u64,
}

impl Mac {
    /// Creates a MAC keyed with `key`.
    pub fn new(key: SymmetricKey) -> Self {
        Self {
            cipher: BlockCipher::new(key),
            k: key.material().rotate_left(7) ^ 0x006D_6163_2D6B_6579, // "mac-key"
        }
    }

    /// Computes the tag for `message`.
    pub fn tag(&self, message: &[u8]) -> MacTag {
        // Two independent keyed hashes -> 128-bit pre-tag -> one cipher call.
        let h0 = self.fold(message, self.k);
        let h1 = self.fold(message, self.k.rotate_left(32) ^ 0x517c_c1b7_2722_0a95);
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(&h0.to_le_bytes());
        block[8..].copy_from_slice(&h1.to_le_bytes());
        MacTag(self.cipher.encrypt_block(&block))
    }

    /// Verifies that `tag` authenticates `message`.
    pub fn verify(&self, message: &[u8], tag: &MacTag) -> bool {
        // A hardware implementation would compare in constant time; the
        // simulator charges a fixed latency for the whole operation.
        self.tag(message) == *tag
    }

    fn fold(&self, message: &[u8], mut h: u64) -> u64 {
        h ^= message.len() as u64;
        for &b in message {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
            h = h.rotate_left(29);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mac() -> Mac {
        Mac::new(SymmetricKey::from_seed(1))
    }

    #[test]
    fn tag_then_verify() {
        let m = mac();
        let t = m.tag(b"hello");
        assert!(m.verify(b"hello", &t));
    }

    #[test]
    fn reject_modified_message() {
        let m = mac();
        let t = m.tag(b"hello");
        assert!(!m.verify(b"hellp", &t));
        assert!(!m.verify(b"hell", &t));
        assert!(!m.verify(b"helloo", &t));
    }

    #[test]
    fn reject_wrong_key() {
        let t = Mac::new(SymmetricKey::from_seed(1)).tag(b"msg");
        assert!(!Mac::new(SymmetricKey::from_seed(2)).verify(b"msg", &t));
    }

    #[test]
    fn length_extension_insensitive_on_samples() {
        // "ab" + "c" must not produce the same tag as "a" + "bc".
        let m = mac();
        assert_ne!(m.tag(b"ab\0c"), m.tag(b"a\0bc"));
    }

    #[test]
    fn empty_message_has_tag() {
        let m = mac();
        let t = m.tag(b"");
        assert!(m.verify(b"", &t));
        assert!(!m.verify(b"x", &t));
    }

    proptest! {
        #[test]
        fn prop_verify_own_tag(seed in any::<u64>(),
                               msg in proptest::collection::vec(any::<u8>(), 0..200)) {
            let m = Mac::new(SymmetricKey::from_seed(seed));
            let t = m.tag(&msg);
            prop_assert!(m.verify(&msg, &t));
        }

        #[test]
        fn prop_distinct_messages_distinct_tags(seed in any::<u64>(),
                                                m1 in proptest::collection::vec(any::<u8>(), 0..64),
                                                m2 in proptest::collection::vec(any::<u8>(), 0..64)) {
            prop_assume!(m1 != m2);
            let m = Mac::new(SymmetricKey::from_seed(seed));
            prop_assert_ne!(m.tag(&m1), m.tag(&m2));
        }
    }
}
