//! Keyed pseudo-random function.
//!
//! The ORAM controller uses a PRF in two places in this reproduction:
//!
//! 1. Default leaf assignment: a block that has never been accessed is
//!    mapped to leaf `PRF(key, addr) mod leaf_count`. This makes the
//!    position map *lazily materializable* — the simulator only stores
//!    entries for blocks that have been remapped — while remaining
//!    indistinguishable (to the simulated adversary) from the uniformly
//!    random initial assignment the paper assumes.
//! 2. Keystream generation inside [`crate::ProbCipher`].

use crate::keys::SymmetricKey;

/// A keyed pseudo-random function over 64-bit inputs.
///
/// # Example
///
/// ```
/// use otc_crypto::{Prf, SymmetricKey};
///
/// let prf = Prf::new(SymmetricKey::from_seed(5), b"leaf-assignment");
/// let a = prf.eval(1234);
/// assert_eq!(a, prf.eval(1234));   // deterministic
/// assert_ne!(a, prf.eval(1235));   // input-dependent
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Prf {
    k0: u64,
    k1: u64,
}

impl Prf {
    /// Creates a PRF from a key and a domain-separation label.
    ///
    /// Distinct labels yield independent-looking functions under the same
    /// key, which mirrors how a real design would derive sub-keys.
    pub fn new(key: SymmetricKey, label: &[u8]) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a basis
        for &b in label {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut seed = crate::rng::SplitMix64::new(key.material() ^ h);
        Self {
            k0: seed.next_u64(),
            k1: seed.next_u64(),
        }
    }

    /// Evaluates the PRF on `input`.
    pub fn eval(&self, input: u64) -> u64 {
        // Two rounds of a mix similar to SplitMix's finalizer, keyed.
        let mut z = input ^ self.k0;
        z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        z ^= self.k1;
        z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        z ^ (z >> 33)
    }

    /// Evaluates the PRF on a pair of inputs (e.g. nonce ‖ counter).
    pub fn eval2(&self, a: u64, b: u64) -> u64 {
        self.eval(self.eval(a).wrapping_add(b).rotate_left(32))
    }

    /// Evaluates the PRF and reduces the result to `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn eval_below(&self, input: u64, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.eval(input) as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn label_separation() {
        let key = SymmetricKey::from_seed(1);
        let p1 = Prf::new(key, b"a");
        let p2 = Prf::new(key, b"b");
        assert_ne!(p1.eval(0), p2.eval(0));
    }

    #[test]
    fn key_separation() {
        let p1 = Prf::new(SymmetricKey::from_seed(1), b"x");
        let p2 = Prf::new(SymmetricKey::from_seed(2), b"x");
        assert_ne!(p1.eval(0), p2.eval(0));
    }

    #[test]
    fn low_collision_rate_on_sequential_inputs() {
        let p = Prf::new(SymmetricKey::from_seed(7), b"leaf");
        let outs: HashSet<u64> = (0..10_000u64).map(|i| p.eval(i)).collect();
        assert_eq!(outs.len(), 10_000, "collisions on only 10k inputs");
    }

    #[test]
    fn eval_below_distributes_roughly_uniformly() {
        let p = Prf::new(SymmetricKey::from_seed(3), b"u");
        const BUCKETS: usize = 16;
        let mut counts = [0usize; BUCKETS];
        const N: u64 = 16_000;
        for i in 0..N {
            counts[p.eval_below(i, BUCKETS as u64) as usize] += 1;
        }
        let expect = N as usize / BUCKETS;
        for &c in &counts {
            assert!(
                c > expect / 2 && c < expect * 2,
                "bucket count {c} far from {expect}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_eval_below_in_range(seed in any::<u64>(), x in any::<u64>(),
                                    bound in 1u64..=u64::MAX) {
            let p = Prf::new(SymmetricKey::from_seed(seed), b"t");
            prop_assert!(p.eval_below(x, bound) < bound);
        }

        #[test]
        fn prop_eval2_depends_on_both(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
            let p = Prf::new(SymmetricKey::from_seed(seed), b"t");
            prop_assert_ne!(p.eval2(a, b), p.eval2(a, b.wrapping_add(1)));
            prop_assert_ne!(p.eval2(a, b), p.eval2(a.wrapping_add(1), b));
        }
    }
}
