//! A 128-bit block cipher stand-in for the ORAM controller's AES engine.
//!
//! The paper's ORAM controller encrypts/decrypts every 16-byte chunk that
//! crosses the chip pins with AES-128 at fixed latency (§9.1.4, Table 2).
//! We model the *interface and timing* of that engine; the permutation
//! itself is a small ARX (add-rotate-xor) construction that is invertible
//! and key-dependent but **not cryptographically secure** (see the crate
//! docs).

use crate::keys::SymmetricKey;

/// A 128-bit cipher block, the unit the simulated AES engine works on.
///
/// The paper calls these "16 Byte chunks"; one chunk crosses the chip pins
/// per DRAM cycle (§9.1.2).
pub type Block = [u8; 16];

const ROUNDS: usize = 8;

/// A fixed-latency 128-bit block cipher (simulated AES-128).
///
/// # Example
///
/// ```
/// use otc_crypto::{BlockCipher, SymmetricKey};
///
/// let cipher = BlockCipher::new(SymmetricKey::from_seed(1));
/// let pt = *b"sixteen BytE blk";
/// let ct = cipher.encrypt_block(&pt);
/// assert_ne!(ct, pt);
/// assert_eq!(cipher.decrypt_block(&ct), pt);
/// ```
#[derive(Debug, Clone)]
pub struct BlockCipher {
    round_keys: [(u64, u64); ROUNDS],
}

impl BlockCipher {
    /// Creates a cipher keyed with `key`.
    pub fn new(key: SymmetricKey) -> Self {
        let mut ks = crate::rng::SplitMix64::new(key.material());
        let mut round_keys = [(0u64, 0u64); ROUNDS];
        for rk in &mut round_keys {
            *rk = (ks.next_u64(), ks.next_u64());
        }
        Self { round_keys }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, plaintext: &Block) -> Block {
        let (mut a, mut b) = split(plaintext);
        for &(k0, k1) in &self.round_keys {
            a = a.wrapping_add(k0);
            b ^= a.rotate_left(17);
            b = b.wrapping_add(k1);
            a ^= b.rotate_left(41);
        }
        join(a, b)
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, ciphertext: &Block) -> Block {
        let (mut a, mut b) = split(ciphertext);
        for &(k0, k1) in self.round_keys.iter().rev() {
            a ^= b.rotate_left(41);
            b = b.wrapping_sub(k1);
            b ^= a.rotate_left(17);
            a = a.wrapping_sub(k0);
        }
        join(a, b)
    }
}

fn split(block: &Block) -> (u64, u64) {
    let a = u64::from_le_bytes(block[..8].try_into().expect("8-byte half"));
    let b = u64::from_le_bytes(block[8..].try_into().expect("8-byte half"));
    (a, b)
}

fn join(a: u64, b: u64) -> Block {
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&a.to_le_bytes());
    out[8..].copy_from_slice(&b.to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_simple() {
        let c = BlockCipher::new(SymmetricKey::from_seed(3));
        let pt: Block = [7u8; 16];
        assert_eq!(c.decrypt_block(&c.encrypt_block(&pt)), pt);
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let c1 = BlockCipher::new(SymmetricKey::from_seed(1));
        let c2 = BlockCipher::new(SymmetricKey::from_seed(2));
        let pt: Block = [0u8; 16];
        assert_ne!(c1.encrypt_block(&pt), c2.encrypt_block(&pt));
    }

    #[test]
    fn encryption_changes_plaintext() {
        let c = BlockCipher::new(SymmetricKey::from_seed(9));
        for i in 0..32u8 {
            let pt: Block = [i; 16];
            assert_ne!(c.encrypt_block(&pt), pt);
        }
    }

    #[test]
    fn deterministic_for_same_key() {
        let c1 = BlockCipher::new(SymmetricKey::from_seed(11));
        let c2 = BlockCipher::new(SymmetricKey::from_seed(11));
        let pt: Block = *b"0123456789abcdef";
        assert_eq!(c1.encrypt_block(&pt), c2.encrypt_block(&pt));
    }

    #[test]
    fn single_bit_flip_diffuses() {
        // Avalanche sanity: flipping one plaintext bit should change many
        // ciphertext bits. (ARX rounds give decent diffusion.)
        let c = BlockCipher::new(SymmetricKey::from_seed(4));
        let pt0: Block = [0u8; 16];
        let mut pt1 = pt0;
        pt1[0] ^= 1;
        let ct0 = c.encrypt_block(&pt0);
        let ct1 = c.encrypt_block(&pt1);
        let differing: u32 = ct0
            .iter()
            .zip(ct1.iter())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert!(differing > 20, "only {differing} bits differ");
    }

    proptest! {
        #[test]
        fn prop_roundtrip(seed in any::<u64>(), pt in any::<[u8; 16]>()) {
            let c = BlockCipher::new(SymmetricKey::from_seed(seed));
            prop_assert_eq!(c.decrypt_block(&c.encrypt_block(&pt)), pt);
        }

        #[test]
        fn prop_injective_on_samples(seed in any::<u64>(),
                                     p1 in any::<[u8; 16]>(),
                                     p2 in any::<[u8; 16]>()) {
            prop_assume!(p1 != p2);
            let c = BlockCipher::new(SymmetricKey::from_seed(seed));
            prop_assert_ne!(c.encrypt_block(&p1), c.encrypt_block(&p2));
        }
    }
}
