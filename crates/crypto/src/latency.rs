//! Fixed cycle latencies charged for cryptographic operations.
//!
//! §4.1 of the paper: "For timing protection, we additionally require that
//! all encryption routines are fixed latency." The ORAM controller's AES
//! path is sized to keep up with the pins — one 16-byte chunk per DRAM
//! cycle (§9.1.4, citing a 53 Gb/s-class AES engine scaled to 170 Gb/s at
//! the paper's clock). These constants encode that contract; the
//! simulator's timing model charges them regardless of data values, so no
//! crypto operation can itself become a timing channel.

/// Processor clock frequency assumed throughout the paper (Table 1).
pub const CPU_HZ: u64 = 1_000_000_000;

/// DRAM SDR-equivalent frequency used to rate-match DDR3-1333 ×2 channels
/// (§9.1.2): 2 × 667 MHz = 1.334 GHz.
pub const DRAM_HZ: u64 = 1_334_000_000;

/// Bytes of one AES chunk (the paper encrypts in 16-byte units).
pub const CHUNK_BYTES: usize = 16;

/// AES pipeline throughput: chunks processed per DRAM cycle.
///
/// The engine is provisioned to match pin bandwidth exactly (16 B per DRAM
/// cycle), so it never stalls the path read/write.
pub const CHUNKS_PER_DRAM_CYCLE: u64 = 1;

/// Fixed pipeline fill latency of the AES unit, in CPU cycles.
///
/// Only the *fill* appears on the critical path once per burst; steady
/// state is hidden behind the pin transfer. The value is small relative to
/// the 1488-cycle access and is folded into the calibrated ORAM latency.
pub const AES_PIPELINE_FILL_CYCLES: u64 = 12;

/// Fixed latency of a MAC tag computation over a protocol message, in CPU
/// cycles. Used by the session-protocol model; never data-dependent.
pub const MAC_CYCLES: u64 = 64;

/// Fixed latency of a public-key unseal at session setup, in CPU cycles.
/// Happens once per session, off the steady-state critical path.
pub const UNSEAL_CYCLES: u64 = 200_000;

/// Converts a whole number of DRAM cycles to CPU cycles, rounding up.
///
/// # Example
///
/// ```
/// // 1984 DRAM cycles at 1.334 GHz is 1488 CPU cycles at 1 GHz (§9.1.4).
/// assert_eq!(otc_crypto::latency::dram_to_cpu_cycles(1984), 1488);
/// ```
pub fn dram_to_cpu_cycles(dram_cycles: u64) -> u64 {
    // ceil(dram_cycles * CPU_HZ / DRAM_HZ)
    (dram_cycles * CPU_HZ).div_ceil(DRAM_HZ)
}

/// Converts CPU cycles to DRAM cycles, rounding up.
pub fn cpu_to_dram_cycles(cpu_cycles: u64) -> u64 {
    (cpu_cycles * DRAM_HZ).div_ceil(CPU_HZ)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn papers_conversion_1984_to_1488() {
        // §9.1.4: "the entire ORAM access (1488 processor cycles, or 1984
        // DRAM cycles)".
        assert_eq!(dram_to_cpu_cycles(1984), 1488);
    }

    #[test]
    fn zero_maps_to_zero() {
        assert_eq!(dram_to_cpu_cycles(0), 0);
        assert_eq!(cpu_to_dram_cycles(0), 0);
    }

    #[test]
    fn roundtrip_is_within_rounding() {
        for c in [1u64, 10, 100, 1488, 12345] {
            let rt = dram_to_cpu_cycles(cpu_to_dram_cycles(c));
            assert!(rt >= c && rt <= c + 2, "{c} -> {rt}");
        }
    }

    #[test]
    fn cpu_to_dram_1488_to_1984_ish() {
        let d = cpu_to_dram_cycles(1488);
        assert!((1984..=1986).contains(&d), "got {d}");
    }
}
