//! Property tests for the stepped simulator core: random instruction
//! scripts driven with random per-event service latencies never wedge the
//! event protocol, and slower backends can never make a run finish in
//! fewer cycles (the monotonicity the closed-loop host leans on).

use otc_sim::instr::{Instr, InstructionStream};
use otc_sim::{Cycle, SimConfig, StepEvent, SteppedSim};
use proptest::prelude::*;

/// A fixed instruction vector, repeated (keeps code/data footprints
/// bounded, like a looping program).
struct Script {
    instrs: Vec<Instr>,
    i: usize,
}

impl InstructionStream for Script {
    fn next_instr(&mut self) -> Instr {
        let instr = self.instrs[self.i % self.instrs.len()];
        self.i += 1;
        instr
    }
}

/// Deterministic per-event latency stream (SplitMix64 step), so the
/// monotonicity property can replay the same base draws and add slack.
fn latency(seed: u64, event: u64, span: u64) -> Cycle {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_mul(event | 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % span
}

/// Strategy: one random instruction, biased toward memory ops so LLC
/// events actually occur. Addresses span 64 MB (beyond the LLC); branch
/// targets stay inside a 16 KB code region.
fn instr_strategy() -> impl Strategy<Value = Instr> {
    (0u8..10, 0u64..(1 << 26), any::<bool>()).prop_map(|(op, addr, flag)| match op {
        0 => Instr::IntAlu,
        1 => Instr::IntMul,
        2 => Instr::IntDiv,
        3 => Instr::FpAlu,
        4 => Instr::FpMul,
        5 | 6 => Instr::Load { addr },
        7 | 8 => Instr::Store { addr },
        _ => Instr::Branch {
            taken: flag,
            target: 0x1000 + (addr % (1 << 14)) / 4 * 4,
        },
    })
}

fn script_strategy() -> impl Strategy<Value = Vec<Instr>> {
    collection::vec(instr_strategy(), 4..120)
}

/// Drives `script` to completion, supplying `latency(seed, i, span)` per
/// demand read. Returns (total cycles, demand reads, writebacks,
/// instructions). Panics (failing the property) if the protocol wedges:
/// more events than `max_events` without finishing.
fn drive(
    script: Vec<Instr>,
    budget: u64,
    seed: u64,
    span: u64,
    max_events: u64,
) -> (Cycle, u64, u64, u64) {
    let mut core = SteppedSim::new(SimConfig::default());
    let mut wl = Script {
        instrs: script,
        i: 0,
    };
    let (mut reads, mut writes, mut events) = (0u64, 0u64, 0u64);
    loop {
        match core.next_event(&mut wl, budget) {
            StepEvent::DemandRead { at, .. } => {
                reads += 1;
                core.resume(at + latency(seed, reads, span));
            }
            StepEvent::Writeback { .. } => writes += 1,
            StepEvent::Finished => break,
        }
        events += 1;
        assert!(
            events <= max_events,
            "stepped core wedged: {events} events without finishing"
        );
    }
    let instructions = core.instructions();
    let stats = core.stats();
    assert_eq!(reads, stats.llc_demand_misses, "read events vs stats");
    assert_eq!(writes, stats.llc_writebacks, "writeback events vs stats");
    (core.now(), reads, writes, instructions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random scripts + random per-event latencies: the stepped protocol
    /// always reaches `Finished` with the full budget retired, and event
    /// counts reconcile with the miss statistics.
    #[test]
    fn prop_random_latencies_never_deadlock(
        script in script_strategy(),
        seed in any::<u64>(),
        span in 1u64..20_000,
    ) {
        let budget = 4_000;
        // Each instruction produces at most a handful of events; 16x the
        // budget is far beyond any legitimate event volume.
        let (cycles, _, _, instructions) = drive(script, budget, seed, span, budget * 16);
        prop_assert_eq!(instructions, budget);
        prop_assert!(cycles >= budget, "cycles {} below instruction count", cycles);
    }

    /// Pointwise-larger service latencies never decrease total cycles:
    /// the event sequence is latency-independent (same instruction and
    /// address stream), and every timestamp is monotone in the supplied
    /// completions.
    #[test]
    fn prop_monotone_latencies_monotone_cycles(
        script in script_strategy(),
        seed in any::<u64>(),
        span in 1u64..10_000,
        slack in 1u64..8_000,
    ) {
        let budget = 3_000;
        let (base, base_reads, base_writes, _) =
            drive(script.clone(), budget, seed, span, budget * 16);
        // Same base draws, plus a positive per-event bump: `latency` with
        // span+slack dominates pointwise only if re-derived; instead just
        // add a constant bump, the simplest pointwise-larger assignment.
        let bump = slack;
        let bumped = {
            let mut core = SteppedSim::new(SimConfig::default());
            let mut wl = Script { instrs: script, i: 0 };
            let mut reads = 0u64;
            loop {
                match core.next_event(&mut wl, budget) {
                    StepEvent::DemandRead { at, .. } => {
                        reads += 1;
                        core.resume(at + latency(seed, reads, span) + bump);
                    }
                    StepEvent::Writeback { .. } => {}
                    StepEvent::Finished => break,
                }
            }
            prop_assert_eq!(reads, base_reads, "event sequence must be latency-independent");
            prop_assert_eq!(core.stats().llc_writebacks, base_writes);
            core.now()
        };
        prop_assert!(
            bumped >= base,
            "slower backend finished earlier: {} < {} (bump {})",
            bumped,
            base,
            bump
        );
    }
}
