//! Simulator configuration — Table 1 of the paper.

/// Per-class instruction latencies (Table 1, "Pipeline stages per …").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Integer arithmetic (1 stage).
    pub int_alu: u64,
    /// Integer multiply (4 stages).
    pub int_mul: u64,
    /// Integer divide (12 stages).
    pub int_div: u64,
    /// FP arithmetic (2 stages).
    pub fp_alu: u64,
    /// FP multiply (4 stages).
    pub fp_mul: u64,
    /// FP divide (10 stages).
    pub fp_div: u64,
    /// Extra cycles charged for a taken branch (pipeline redirect). The
    /// paper's SESC core model does not document this; 2 cycles is a
    /// conventional in-order redirect cost and applies uniformly to all
    /// schemes, so overhead *ratios* are insensitive to it.
    pub taken_branch_penalty: u64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            int_alu: 1,
            int_mul: 4,
            int_div: 12,
            fp_alu: 2,
            fp_mul: 4,
            fp_div: 10,
            taken_branch_penalty: 2,
        }
    }
}

/// One cache's parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (64 throughout the paper).
    pub line_bytes: u64,
    /// Cycles for a hit.
    pub hit_latency: u64,
    /// Extra cycles added on a miss before the next level is consulted.
    pub miss_extra: u64,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.capacity_bytes / (self.ways as u64 * self.line_bytes)) as usize
    }
}

/// The full memory-hierarchy + core configuration (defaults = Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Core latencies.
    pub core: CoreConfig,
    /// L1 instruction cache: 32 KB, 4-way, hit 1, miss +0.
    pub l1i: CacheConfig,
    /// L1 data cache: 32 KB, 4-way, hit 2, miss +1.
    pub l1d: CacheConfig,
    /// Unified, inclusive L2 (the LLC): 1 MB, 16-way, hit 10, miss +4.
    pub l2: CacheConfig,
    /// Non-blocking write buffer entries (8).
    pub write_buffer_entries: usize,
    /// If set, record a [`crate::WindowSample`] every this many retired
    /// instructions (used by Fig. 2 and Fig. 7).
    pub window_instructions: Option<u64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            core: CoreConfig::default(),
            l1i: CacheConfig {
                capacity_bytes: 32 << 10,
                ways: 4,
                line_bytes: 64,
                hit_latency: 1,
                miss_extra: 0,
            },
            l1d: CacheConfig {
                capacity_bytes: 32 << 10,
                ways: 4,
                line_bytes: 64,
                hit_latency: 2,
                miss_extra: 1,
            },
            l2: CacheConfig {
                capacity_bytes: 1 << 20,
                ways: 16,
                line_bytes: 64,
                hit_latency: 10,
                miss_extra: 4,
            },
            write_buffer_entries: 8,
            window_instructions: None,
        }
    }
}

impl SimConfig {
    /// The paper's configuration with a different LLC capacity (the paper
    /// also ran 512 KB–4 MB sweeps, §9.1.2).
    pub fn with_llc_capacity(mut self, bytes: u64) -> Self {
        self.l2.capacity_bytes = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = SimConfig::default();
        assert_eq!(c.core.int_div, 12);
        assert_eq!(c.core.fp_div, 10);
        assert_eq!(c.l1i.sets(), 128); // 32 KB / (4 * 64)
        assert_eq!(c.l1d.sets(), 128);
        assert_eq!(c.l2.sets(), 1024); // 1 MB / (16 * 64)
        assert_eq!(c.write_buffer_entries, 8);
    }

    #[test]
    fn llc_capacity_override() {
        let c = SimConfig::default().with_llc_capacity(4 << 20);
        assert_eq!(c.l2.sets(), 4096);
    }
}
