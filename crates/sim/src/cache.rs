//! A set-associative, write-back cache with LRU replacement.
//!
//! Used for the L1 I, L1 D and unified L2 of Table 1. The model is
//! timing-level: tags, valid/dirty bits and LRU state are tracked, data
//! values are not (functional data lives in the ORAM backend).

use crate::config::CacheConfig;

/// Result of a cache lookup-with-fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// A dirty victim line's address, if the fill evicted one.
    pub writeback: Option<u64>,
    /// A clean or dirty victim's address (for inclusive back-invalidation
    /// bookkeeping at the level above).
    pub evicted: Option<u64>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// One cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields zero sets or ways.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(sets > 0 && config.ways > 0, "degenerate cache geometry");
        Self {
            config,
            sets: vec![vec![Way::default(); config.ways]; sets],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn index_tag(&self, line_addr: u64) -> (usize, u64) {
        let sets = self.sets.len() as u64;
        ((line_addr % sets) as usize, line_addr / sets)
    }

    /// Looks up `line_addr` (a *line* address, i.e. byte address / line
    /// size). On a miss, fills the line, evicting the LRU way. Marks the
    /// line dirty when `write` is set.
    pub fn access(&mut self, line_addr: u64, write: bool) -> AccessOutcome {
        self.tick += 1;
        let (set_idx, tag) = self.index_tag(line_addr);
        let sets = self.sets.len() as u64;
        let set = &mut self.sets[set_idx];

        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.lru = self.tick;
            way.dirty |= write;
            self.hits += 1;
            return AccessOutcome {
                hit: true,
                writeback: None,
                evicted: None,
            };
        }

        self.misses += 1;
        // Victim: invalid way if any, else LRU.
        let victim_idx = set.iter().position(|w| !w.valid).unwrap_or_else(|| {
            set.iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .map(|(i, _)| i)
                .expect("non-empty set")
        });
        let victim = set[victim_idx];
        let (writeback, evicted) = if victim.valid {
            let victim_addr = victim.tag * sets + set_idx as u64;
            (victim.dirty.then_some(victim_addr), Some(victim_addr))
        } else {
            (None, None)
        };
        set[victim_idx] = Way {
            tag,
            valid: true,
            dirty: write,
            lru: self.tick,
        };
        AccessOutcome {
            hit: false,
            writeback,
            evicted,
        }
    }

    /// Probes for presence without updating LRU or filling.
    pub fn probe(&self, line_addr: u64) -> bool {
        let (set_idx, tag) = self.index_tag(line_addr);
        self.sets[set_idx].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Invalidates `line_addr` if present; returns whether the dropped
    /// line was dirty (inclusive-hierarchy back-invalidation).
    pub fn invalidate(&mut self, line_addr: u64) -> Option<bool> {
        let (set_idx, tag) = self.index_tag(line_addr);
        for way in &mut self.sets[set_idx] {
            if way.valid && way.tag == tag {
                way.valid = false;
                return Some(way.dirty);
            }
        }
        None
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny(ways: usize, sets_times_ways_lines: u64) -> Cache {
        // line 64 B; capacity chosen to produce the requested geometry.
        Cache::new(CacheConfig {
            capacity_bytes: sets_times_ways_lines * 64,
            ways,
            line_bytes: 64,
            hit_latency: 1,
            miss_extra: 0,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny(2, 8);
        assert!(!c.access(5, false).hit);
        assert!(c.access(5, false).hit);
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny(2, 2); // 1 set, 2 ways
        assert_eq!(c.sets.len(), 1);
        c.access(0, false);
        c.access(1, false);
        c.access(0, false); // touch 0: now 1 is LRU
        let out = c.access(2, false); // evicts 1
        assert_eq!(out.evicted, Some(1));
        assert!(c.probe(0));
        assert!(!c.probe(1));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny(1, 1); // direct-mapped single line
        c.access(3, true);
        let out = c.access(4, false);
        assert_eq!(out.writeback, Some(3));
        assert_eq!(out.evicted, Some(3));
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = tiny(1, 1);
        c.access(3, false);
        let out = c.access(4, false);
        assert_eq!(out.writeback, None);
        assert_eq!(out.evicted, Some(3));
    }

    #[test]
    fn write_hit_sets_dirty() {
        let mut c = tiny(1, 1);
        c.access(3, false);
        c.access(3, true); // hit, marks dirty
        let out = c.access(4, false);
        assert_eq!(out.writeback, Some(3));
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = tiny(2, 4);
        c.access(1, true);
        c.access(2, false);
        assert_eq!(c.invalidate(1), Some(true));
        assert_eq!(c.invalidate(2), Some(false));
        assert_eq!(c.invalidate(9), None);
        assert!(!c.probe(1));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny(1, 4); // 4 sets, direct-mapped
        for a in 0..4 {
            c.access(a, false);
        }
        for a in 0..4 {
            assert!(c.probe(a), "line {a} evicted by non-conflicting line");
        }
    }

    proptest! {
        /// A cache with S sets and W ways never holds more than W lines
        /// that map to the same set, and a re-access within the last W
        /// distinct same-set lines always hits (LRU property).
        #[test]
        fn prop_lru_within_ways(ways in 1usize..5, addrs in proptest::collection::vec(0u64..64, 1..200)) {
            let mut c = tiny(ways, ways as u64); // single set
            let mut recent: Vec<u64> = Vec::new(); // most recent last, distinct
            for &a in &addrs {
                let hit = c.access(a, false).hit;
                let expect_hit = recent.iter().rev().take(ways).any(|&r| r == a);
                prop_assert_eq!(hit, expect_hit, "addr {} recent {:?}", a, recent);
                recent.retain(|&r| r != a);
                recent.push(a);
            }
        }
    }
}
