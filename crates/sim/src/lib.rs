//! Cycle-level secure-processor simulator — the substrate under every
//! experiment in the HPCA'14 reproduction.
//!
//! The paper models its secure processor with SESC (a MIPS cycle-level
//! simulator); this crate is a from-scratch equivalent of the
//! configuration in the paper's Table 1:
//!
//! * in-order, single-issue core with per-class instruction latencies,
//! * 32 KB 4-way L1 I/D caches, a 1 MB 16-way inclusive unified L2 (the
//!   LLC), 64 B lines,
//! * an 8-entry non-blocking write buffer that can generate multiple
//!   concurrent outstanding LLC misses,
//! * a pluggable [`MemoryBackend`] below the LLC.
//!
//! The insecure [`DramBackend`] (flat 40-cycle DRAM) lives here; the ORAM
//! backends — unprotected, static-rate and the paper's dynamic
//! leakage-bounded scheme — are provided by `otc-core`.
//!
//! The execution core is event-steppable: [`SteppedSim`] advances to the
//! next LLC-level memory event and suspends until the caller supplies the
//! observed service latency, which is how the multi-tenant host's
//! closed-loop tenant frontends feed shared-backend service times back
//! into each tenant's clock. The blocking [`Simulator::run`] is a thin
//! driver over the same core.
//!
//! # Example
//!
//! ```
//! use otc_sim::{DramBackend, SimConfig, Simulator};
//! use otc_sim::instr::{Instr, InstructionStream};
//!
//! /// A trivial pointer-free workload.
//! struct Alu;
//! impl InstructionStream for Alu {
//!     fn next_instr(&mut self) -> Instr { Instr::IntAlu }
//! }
//!
//! let stats = Simulator::new(SimConfig::default())
//!     .run(&mut Alu, &mut DramBackend::new(), 10_000);
//! assert_eq!(stats.instructions, 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
pub mod instr;
mod memory;
mod processor;
mod stats;
mod write_buffer;

pub use cache::{AccessOutcome, Cache};
pub use config::{CacheConfig, CoreConfig, SimConfig};
pub use instr::{Instr, InstructionStream};
pub use memory::{AccessKind, DramBackend, MemoryBackend};
pub use otc_dram::Cycle;
pub use processor::{SimResult, Simulator, StepEvent, SteppedSim, WarmState};
pub use stats::{BackendEnergyProfile, ComponentCounts, SimStats, WindowSample};
pub use write_buffer::WriteBuffer;
