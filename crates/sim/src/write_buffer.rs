//! The non-blocking write buffer (Table 1: 8 entries).
//!
//! Stores retire into the buffer without stalling the core; entries drain
//! through the cache hierarchy in the background. Because several drains
//! can be outstanding at once, the buffer is what generates the
//! *concurrent* LLC misses the paper's `Waste` counter must account for
//! (Req 3 in Fig. 4 / §7.1.1).

use otc_dram::Cycle;

/// Occupancy tracker for the write buffer.
///
/// The buffer holds completion times: an entry is live until the cycle at
/// which its drain (possibly an ORAM access) finishes.
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    completions: Vec<Cycle>,
    capacity: usize,
    peak: usize,
}

impl WriteBuffer {
    /// Creates a buffer with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "write buffer needs at least one entry");
        Self {
            completions: Vec::with_capacity(capacity),
            capacity,
            peak: 0,
        }
    }

    /// Drops entries whose drains completed by `now`.
    pub fn retire_completed(&mut self, now: Cycle) {
        self.completions.retain(|&c| c > now);
    }

    /// The earliest cycle at which an entry frees up (call only when
    /// full). Used to compute how long the core must stall.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn earliest_completion(&self) -> Cycle {
        *self
            .completions
            .iter()
            .min()
            .expect("earliest_completion on empty buffer")
    }

    /// Whether all entries are occupied at the current instant.
    pub fn is_full(&self) -> bool {
        self.completions.len() >= self.capacity
    }

    /// Records a new drain completing at `completion`.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full — call [`WriteBuffer::retire_completed`]
    /// (and stall past [`WriteBuffer::earliest_completion`]) first.
    pub fn push(&mut self, completion: Cycle) {
        assert!(!self.is_full(), "push into full write buffer");
        self.completions.push(completion);
        self.peak = self.peak.max(self.completions.len());
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.completions.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.completions.is_empty()
    }

    /// High-water mark.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_then_drain() {
        let mut wb = WriteBuffer::new(2);
        wb.push(10);
        wb.push(20);
        assert!(wb.is_full());
        wb.retire_completed(10);
        assert_eq!(wb.len(), 1);
        wb.retire_completed(25);
        assert!(wb.is_empty());
        assert_eq!(wb.peak(), 2);
    }

    #[test]
    fn earliest_completion_is_min() {
        let mut wb = WriteBuffer::new(3);
        wb.push(30);
        wb.push(10);
        wb.push(20);
        assert_eq!(wb.earliest_completion(), 10);
    }

    #[test]
    #[should_panic(expected = "push into full")]
    fn overfill_panics() {
        let mut wb = WriteBuffer::new(1);
        wb.push(5);
        wb.push(6);
    }

    #[test]
    fn retire_is_exclusive_of_now() {
        let mut wb = WriteBuffer::new(1);
        wb.push(10);
        wb.retire_completed(9);
        assert!(wb.is_full());
        wb.retire_completed(10); // completes *at* 10 → free at 10
        assert!(wb.is_empty());
    }
}
