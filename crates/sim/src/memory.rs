//! The memory-backend abstraction and the insecure DRAM backend.
//!
//! The core/cache model is agnostic to what sits below the LLC. The paper
//! evaluates five backends (§9.1.6): plain DRAM (`base_dram`), unprotected
//! ORAM (`base_oram`), three static-rate ORAMs, and the dynamic scheme.
//! `base_dram` lives here; every ORAM-based backend is provided by
//! `otc-core` (rate enforcement is the paper's contribution, so it sits in
//! the core crate).

use crate::stats::BackendEnergyProfile;
use otc_dram::{Cycle, FlatDram};

/// Read or write, as seen below the LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Demand fill (LLC read miss).
    Read,
    /// Dirty eviction write-back.
    Write,
}

/// Something that can serve LLC miss/eviction traffic.
///
/// Implementations are *event-driven*: `request` is called with the
/// current time and returns the completion time; any internal queueing
/// (channel occupancy, ORAM serialization, rate slotting) is the
/// implementation's business. Calls arrive in non-decreasing `now` order.
pub trait MemoryBackend {
    /// Issues a cache-line request at time `now`; returns when the data
    /// is available (reads) or the write is accepted (writes).
    fn request(&mut self, line_addr: u64, kind: AccessKind, now: Cycle) -> Cycle;

    /// Total requests served so far (used for windowed rate reporting,
    /// Fig. 2).
    fn request_count(&self) -> u64;

    /// Informs the backend that simulation ended at `now` (lets
    /// epoch-based backends close out their final epoch's accounting).
    fn finish(&mut self, _now: Cycle) {}

    /// Access counts the power model needs (Table 2 energy coefficients).
    fn energy_profile(&self) -> BackendEnergyProfile;

    /// Backend label for reports (e.g. `base_dram`, `static_300`,
    /// `dynamic_R4_E4`).
    fn label(&self) -> String;
}

/// The insecure baseline: flat-latency DRAM (§9.1.2), no protection.
#[derive(Debug)]
pub struct DramBackend {
    dram: FlatDram,
    requests: u64,
}

impl DramBackend {
    /// Paper-default DRAM: 40-cycle latency, 64 B lines, 2 channels.
    pub fn new() -> Self {
        Self {
            dram: FlatDram::paper_default(),
            requests: 0,
        }
    }
}

impl Default for DramBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryBackend for DramBackend {
    fn request(&mut self, _line_addr: u64, _kind: AccessKind, now: Cycle) -> Cycle {
        self.requests += 1;
        self.dram.access(now)
    }

    fn request_count(&self) -> u64 {
        self.requests
    }

    fn energy_profile(&self) -> BackendEnergyProfile {
        BackendEnergyProfile {
            dram_ctrl_lines: self.requests,
            oram_accesses: 0,
            oram_dummy_accesses: 0,
        }
    }

    fn label(&self) -> String {
        "base_dram".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_backend_flat_latency() {
        let mut b = DramBackend::new();
        assert_eq!(b.request(0, AccessKind::Read, 100), 140);
        assert_eq!(b.request_count(), 1);
        assert_eq!(b.energy_profile().dram_ctrl_lines, 1);
        assert_eq!(b.label(), "base_dram");
    }

    #[test]
    fn writes_also_counted() {
        let mut b = DramBackend::new();
        b.request(0, AccessKind::Write, 0);
        b.request(1, AccessKind::Read, 0);
        assert_eq!(b.request_count(), 2);
    }
}
