//! The simulator's instruction abstraction.
//!
//! The paper simulates MIPS binaries on SESC; our synthetic workloads
//! (see `otc-workloads`) emit instruction *streams* directly. Each
//! instruction carries exactly the information the timing and power
//! models consume: its latency class, and its memory/control effect.

/// One dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Integer ALU op (1 cycle).
    IntAlu,
    /// Integer multiply (4 cycles).
    IntMul,
    /// Integer divide (12 cycles).
    IntDiv,
    /// Floating-point add/sub (2 cycles).
    FpAlu,
    /// Floating-point multiply (4 cycles).
    FpMul,
    /// Floating-point divide (10 cycles).
    FpDiv,
    /// Load from a byte address.
    Load {
        /// Byte address accessed.
        addr: u64,
    },
    /// Store to a byte address (drains through the write buffer).
    Store {
        /// Byte address accessed.
        addr: u64,
    },
    /// Control transfer. `target` is the new program counter if taken;
    /// fall-through otherwise. The PC drives the I-cache model.
    Branch {
        /// Whether the branch is taken.
        taken: bool,
        /// Absolute byte target when taken.
        target: u64,
    },
}

impl Instr {
    /// Whether this instruction references data memory.
    pub fn is_memory(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. })
    }

    /// Whether this is a floating-point operation.
    pub fn is_fp(&self) -> bool {
        matches!(self, Instr::FpAlu | Instr::FpMul | Instr::FpDiv)
    }
}

/// A source of dynamic instructions (implemented by every synthetic
/// workload in `otc-workloads`).
///
/// Streams are infinite: the simulator decides when to stop (instruction
/// budget or program-defined termination via [`InstructionStream::finished`]).
pub trait InstructionStream {
    /// Produces the next dynamic instruction.
    fn next_instr(&mut self) -> Instr;

    /// Human-readable workload name (for reports).
    fn name(&self) -> &str {
        "anonymous"
    }

    /// Whether the program has terminated on its own (early termination,
    /// §6 of the paper). Most synthetic workloads run forever and rely on
    /// the simulator's instruction budget.
    fn finished(&self) -> bool {
        false
    }
}

impl<S: InstructionStream + ?Sized> InstructionStream for &mut S {
    fn next_instr(&mut self) -> Instr {
        (**self).next_instr()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    fn finished(&self) -> bool {
        (**self).finished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Instr::Load { addr: 0 }.is_memory());
        assert!(Instr::Store { addr: 0 }.is_memory());
        assert!(!Instr::IntAlu.is_memory());
        assert!(Instr::FpDiv.is_fp());
        assert!(!Instr::IntDiv.is_fp());
    }

    #[test]
    fn stream_by_mut_ref() {
        struct OneOp;
        impl InstructionStream for OneOp {
            fn next_instr(&mut self) -> Instr {
                Instr::IntAlu
            }
        }
        fn takes_stream<S: InstructionStream>(mut s: S) -> Instr {
            s.next_instr()
        }
        let mut s = OneOp;
        assert_eq!(takes_stream(&mut s), Instr::IntAlu);
    }
}
