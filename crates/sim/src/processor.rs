//! The in-order, single-issue core and its memory hierarchy — the
//! steppable simulation core and its blocking driver.
//!
//! Timing semantics (matching Table 1 and §9.1.2's simple core):
//!
//! * One instruction issues at a time; its latency is its class latency
//!   plus any memory stall.
//! * Instruction fetch is modeled at cache-line granularity: crossing into
//!   a new 64 B line (sequentially or via a taken branch) performs an L1 I
//!   access. L1 I hits overlap with execution (no added stall); misses
//!   stall the core for the L2/backend round trip.
//! * Loads are blocking: L1 D hit costs its hit latency; misses walk to L2
//!   and (on LLC miss) to the memory backend. The paper's store-to-load
//!   overlap is captured by the write buffer (below).
//! * Stores retire into the 8-entry non-blocking write buffer and drain in
//!   the background, generating concurrent outstanding LLC misses
//!   (Fig. 4, Req 3). A full buffer stalls the core.
//! * The L2 is inclusive: L2 evictions back-invalidate L1; dirty LLC
//!   evictions issue write-backs to the backend (ORAM is invoked "on LLC
//!   misses and evictions", §3.1).
//!
//! # Stepped vs. blocking execution
//!
//! The core itself is [`SteppedSim`]: it advances the pipeline, caches and
//! write buffer up to the next LLC-level memory event, *suspends*, and
//! resumes when the caller supplies the observed service latency. The
//! classic blocking [`Simulator::run`] is a thin driver over the stepped
//! core — one code path — that forwards each event to a synchronous
//! [`MemoryBackend`]. External schedulers (notably the closed-loop tenant
//! frontends in `otc-host`) drive [`SteppedSim`] directly, feeding back
//! per-request service times that may depend on shared-backend load.

use crate::cache::{AccessOutcome, Cache};
use crate::config::SimConfig;
use crate::instr::{Instr, InstructionStream};
use crate::memory::{AccessKind, MemoryBackend};
use crate::stats::{SimStats, WindowSample};
use crate::write_buffer::WriteBuffer;
use otc_dram::Cycle;
use std::collections::VecDeque;

/// Outcome of one simulation run.
pub type SimResult = SimStats;

/// The simulator: drives an [`InstructionStream`] through the Table 1
/// microarchitecture over an arbitrary [`MemoryBackend`].
///
/// # Example
///
/// ```
/// use otc_sim::{DramBackend, SimConfig, Simulator};
/// use otc_sim::instr::{Instr, InstructionStream};
///
/// /// Fifteen ALU ops then a loop-back branch, forever.
/// struct Loop(u32);
/// impl InstructionStream for Loop {
///     fn next_instr(&mut self) -> Instr {
///         self.0 = (self.0 + 1) % 16;
///         if self.0 == 0 {
///             Instr::Branch { taken: true, target: 0x1000 }
///         } else {
///             Instr::IntAlu
///         }
///     }
/// }
///
/// let mut backend = DramBackend::new();
/// let stats = Simulator::new(SimConfig::default())
///     .run(&mut Loop(0), &mut backend, 1_600);
/// assert_eq!(stats.instructions, 1_600);
/// assert!(stats.ipc() > 0.8); // tight ALU loop retires near 1 per cycle
/// ```
#[derive(Debug)]
pub struct Simulator {
    config: SimConfig,
}

/// Warm microarchitectural state carried from a fast-forward pass into a
/// measured run (the paper fast-forwards 1–20 billion instructions before
/// measuring, §9.1.1; this is the scaled equivalent).
#[derive(Debug)]
pub struct WarmState {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
}

impl Simulator {
    /// Creates a simulator with `config`.
    pub fn new(config: SimConfig) -> Self {
        Self { config }
    }

    /// Runs `workload` over `backend` for at most `max_instructions`
    /// (stopping earlier if the stream reports
    /// [`InstructionStream::finished`]).
    pub fn run<S, B>(&self, workload: &mut S, backend: &mut B, max_instructions: u64) -> SimResult
    where
        S: InstructionStream + ?Sized,
        B: MemoryBackend + ?Sized,
    {
        let mut core = SteppedSim::new(self.config);
        core.drive(workload, backend, max_instructions);
        core.into_result(backend)
    }

    /// Fast-forward pass: advances `workload` by `instructions` over a
    /// throwaway flat-DRAM backend, returning the warmed cache state.
    /// Timing of this pass is discarded — it exists to populate the
    /// caches, exactly like the paper's SESC fast-forward.
    pub fn warm_caches<S>(&self, workload: &mut S, instructions: u64) -> WarmState
    where
        S: InstructionStream + ?Sized,
    {
        let mut backend = crate::memory::DramBackend::new();
        let mut core = SteppedSim::new(self.config);
        core.drive(workload, &mut backend, instructions);
        core.into_warm_state()
    }

    /// Measured run starting from [`WarmState`]: cache contents persist,
    /// cycle counting starts at zero, and the backend sees a fresh
    /// timeline (epoch schedules begin with the measurement, as they
    /// would when a secure processor starts timing at program start).
    pub fn run_warm<S, B>(
        &self,
        workload: &mut S,
        backend: &mut B,
        max_instructions: u64,
        warm: WarmState,
    ) -> SimResult
    where
        S: InstructionStream + ?Sized,
        B: MemoryBackend + ?Sized,
    {
        let mut core = SteppedSim::warmed(self.config, warm);
        core.drive(workload, backend, max_instructions);
        core.into_result(backend)
    }
}

/// One LLC-level memory event produced by [`SteppedSim::next_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// A demand read below the LLC. The core is suspended on it: supply
    /// the observed completion time via [`SteppedSim::resume`] before the
    /// next [`SteppedSim::next_event`] call.
    DemandRead {
        /// Cache-line address (byte address / line size).
        line_addr: u64,
        /// Cycle the request leaves the LLC.
        at: Cycle,
    },
    /// A dirty write-back below the LLC. Fire-and-forget: hand it to the
    /// backend; the core never stalls on its completion.
    Writeback {
        /// Cache-line address.
        line_addr: u64,
        /// Cycle the write-back is issued.
        at: Cycle,
    },
    /// The run ended: the instruction budget was reached or the stream
    /// reported [`InstructionStream::finished`].
    Finished,
}

/// Where execution suspended, and what remains to be done once the
/// pending demand read's completion time is known.
#[derive(Debug)]
enum Cont {
    /// Ready to execute (fetch the next instruction).
    Ready,
    /// Suspended inside the fetch fill: on resume, advance `now` to the
    /// completion and execute `instr`.
    FetchFill { instr: Instr, l2out: AccessOutcome },
    /// Suspended inside a load fill: on resume, charge the stall and
    /// retire with latency `completion - start`.
    LoadFill {
        instr: Instr,
        start: Cycle,
        l2out: AccessOutcome,
    },
    /// Suspended inside a store drain: on resume, record the drain
    /// completion in the write buffer and retire.
    StoreFill {
        instr: Instr,
        issue: Cycle,
        l2out: AccessOutcome,
    },
}

/// Result of attempting an L2 fill without a synchronous backend.
enum Fill {
    /// L2 hit: completed at the contained cycle.
    Done(Cycle),
    /// LLC miss: a [`StepEvent::DemandRead`] was queued; the caller must
    /// suspend and finish via [`SteppedSim::resume`].
    Suspended(AccessOutcome),
}

/// The event-steppable simulator core.
///
/// `SteppedSim` owns the Table 1 microarchitecture (core, L1 I/D, L2,
/// write buffer) but **no memory backend**: it advances execution until
/// the next LLC-level event and hands control back to the caller.
///
/// # Protocol
///
/// Call [`SteppedSim::next_event`] in a loop:
///
/// * [`StepEvent::Writeback`] — forward to the backend (or shard); no
///   response needed.
/// * [`StepEvent::DemandRead`] — the core is stalled. Obtain the service
///   completion time (synchronously from a [`MemoryBackend`], or later
///   from a shared-shard scheduler) and call [`SteppedSim::resume`].
/// * [`StepEvent::Finished`] — call [`SteppedSim::into_result`] (or
///   [`SteppedSim::into_warm_state`] after a fast-forward pass).
///
/// Events are produced in exactly the order (and with exactly the
/// timestamps) the blocking [`Simulator::run`] would have issued backend
/// requests — `run` *is* this loop. The equivalence suite in
/// `tests/stepped_equivalence.rs` locks that down field-for-field.
///
/// # Example
///
/// ```
/// use otc_sim::{AccessKind, DramBackend, MemoryBackend, SimConfig, StepEvent, SteppedSim};
/// use otc_sim::instr::{Instr, InstructionStream};
///
/// struct Walk(u64);
/// impl InstructionStream for Walk {
///     fn next_instr(&mut self) -> Instr {
///         self.0 += 64;
///         Instr::Load { addr: self.0 * 331 }
///     }
/// }
///
/// let mut backend = DramBackend::new();
/// let mut core = SteppedSim::new(SimConfig::default());
/// let mut workload = Walk(0);
/// loop {
///     match core.next_event(&mut workload, 1_000) {
///         StepEvent::DemandRead { line_addr, at } => {
///             let done = backend.request(line_addr, AccessKind::Read, at);
///             core.resume(done);
///         }
///         StepEvent::Writeback { line_addr, at } => {
///             backend.request(line_addr, AccessKind::Write, at);
///         }
///         StepEvent::Finished => break,
///     }
/// }
/// let stats = core.into_result(&mut backend);
/// assert_eq!(stats.instructions, 1_000);
/// ```
#[derive(Debug)]
pub struct SteppedSim {
    config: SimConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    wb: WriteBuffer,
    now: Cycle,
    pc: u64,
    current_fetch_line: u64,
    /// Completion time of the most recent drain through the shared L1D/L2
    /// port (store drains serialize behind each other).
    drain_port_free: Cycle,
    stats: SimStats,
    next_window: u64,
    /// Requests issued so far (reads + writebacks), mirroring what a
    /// backend's `request_count()` reports under the blocking driver.
    issued_requests: u64,
    /// Events generated but not yet handed to the caller.
    outbox: VecDeque<StepEvent>,
    cont: Cont,
    /// Set while a [`StepEvent::DemandRead`] has been handed out and
    /// [`SteppedSim::resume`] has not been called.
    awaiting_resume: bool,
    /// Issue time of the suspended demand read (`resume` enforces the
    /// supplied completion does not precede it).
    pending_read_at: Cycle,
}

impl SteppedSim {
    /// Creates a cold core with `config`.
    pub fn new(config: SimConfig) -> Self {
        let line = config.l1i.line_bytes;
        Self {
            config,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            wb: WriteBuffer::new(config.write_buffer_entries),
            now: 0,
            pc: 0x1000,
            current_fetch_line: 0x1000 / line,
            drain_port_free: 0,
            stats: SimStats::default(),
            next_window: config.window_instructions.unwrap_or(u64::MAX),
            issued_requests: 0,
            outbox: VecDeque::new(),
            cont: Cont::Ready,
            awaiting_resume: false,
            pending_read_at: 0,
        }
    }

    /// Creates a core whose caches start from `warm` (see
    /// [`Simulator::warm_caches`]).
    pub fn warmed(config: SimConfig, warm: WarmState) -> Self {
        let mut core = Self::new(config);
        core.l1i = warm.l1i;
        core.l1d = warm.l1d;
        core.l2 = warm.l2;
        core
    }

    /// Cycle the core has reached.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.stats.instructions
    }

    /// Read access to the in-progress statistics (`cycles` and `backend`
    /// are only finalized by [`SteppedSim::into_result`]).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Whether the core is suspended on a [`StepEvent::DemandRead`].
    pub fn awaiting_resume(&self) -> bool {
        self.awaiting_resume
    }

    /// Advances to the next LLC-level event (or run end).
    ///
    /// # Panics
    ///
    /// Panics if the previous event was a [`StepEvent::DemandRead`] and
    /// [`SteppedSim::resume`] has not been called.
    pub fn next_event<S>(&mut self, workload: &mut S, max_instructions: u64) -> StepEvent
    where
        S: InstructionStream + ?Sized,
    {
        loop {
            if let Some(ev) = self.outbox.pop_front() {
                if matches!(ev, StepEvent::DemandRead { .. }) {
                    self.awaiting_resume = true;
                }
                return ev;
            }
            assert!(
                !self.awaiting_resume,
                "next_event called while suspended on a DemandRead; call resume() first"
            );
            match self.cont {
                Cont::Ready => {
                    if self.stats.instructions >= max_instructions || workload.finished() {
                        return StepEvent::Finished;
                    }
                    let instr = workload.next_instr();
                    self.begin_instr(instr);
                }
                _ => unreachable!("suspended continuation without awaiting_resume"),
            }
        }
    }

    /// Supplies the completion time of the outstanding demand read and
    /// resumes execution up to the next suspension point (further events
    /// are delivered by subsequent [`SteppedSim::next_event`] calls).
    ///
    /// # Panics
    ///
    /// Panics if no demand read is outstanding, or if `completion`
    /// precedes the read's issue time (its event's `at` — service takes
    /// nonnegative time, so an earlier completion is a driver bug).
    pub fn resume(&mut self, completion: Cycle) {
        assert!(
            self.awaiting_resume,
            "resume() without an outstanding DemandRead"
        );
        assert!(
            completion >= self.pending_read_at,
            "completion {completion} precedes the demand read's issue time {}",
            self.pending_read_at
        );
        self.awaiting_resume = false;
        let cont = std::mem::replace(&mut self.cont, Cont::Ready);
        match cont {
            Cont::FetchFill { instr, l2out } => {
                self.process_l2_eviction(&l2out, completion);
                self.now = completion;
                self.execute_body(instr);
            }
            Cont::LoadFill {
                instr,
                start,
                l2out,
            } => {
                self.process_l2_eviction(&l2out, completion);
                // No underflow: the read issued at start + hit + miss
                // extras, and completion >= that issue time.
                self.stats.load_stall_cycles += completion - start - self.config.l1d.hit_latency;
                self.retire(instr, completion - start);
            }
            Cont::StoreFill {
                instr,
                issue,
                l2out,
            } => {
                self.process_l2_eviction(&l2out, completion);
                self.finish_store(instr, issue, completion);
            }
            Cont::Ready => unreachable!("awaiting_resume without a continuation"),
        }
    }

    /// Drives the core to completion over a synchronous backend — the
    /// single code path under [`Simulator::run`]/[`Simulator::run_warm`].
    pub fn drive<S, B>(&mut self, workload: &mut S, backend: &mut B, max_instructions: u64)
    where
        S: InstructionStream + ?Sized,
        B: MemoryBackend + ?Sized,
    {
        loop {
            match self.next_event(workload, max_instructions) {
                StepEvent::DemandRead { line_addr, at } => {
                    let done = backend.request(line_addr, AccessKind::Read, at);
                    self.resume(done);
                }
                StepEvent::Writeback { line_addr, at } => {
                    backend.request(line_addr, AccessKind::Write, at);
                }
                StepEvent::Finished => break,
            }
        }
    }

    /// Finalizes the run against the backend that served it: closes the
    /// backend's timeline and captures its energy profile.
    pub fn into_result<B>(mut self, backend: &mut B) -> SimResult
    where
        B: MemoryBackend + ?Sized,
    {
        backend.finish(self.now);
        self.stats.cycles = self.now;
        self.stats.backend = backend.energy_profile();
        self.stats
    }

    /// Extracts the warmed cache state (fast-forward pass).
    pub fn into_warm_state(self) -> WarmState {
        WarmState {
            l1i: self.l1i,
            l1d: self.l1d,
            l2: self.l2,
        }
    }

    // ----- execution (one instruction, possibly across suspensions) -----

    fn begin_instr(&mut self, instr: Instr) {
        // Models instruction delivery: an L1 I access per new fetch line.
        // One fetch-buffer read per 256-bit (32 B) group → every 8
        // instructions on average; modeled per line crossing for
        // simplicity (2 groups per 64 B line).
        let line = self.pc / self.config.l1i.line_bytes;
        if line != self.current_fetch_line {
            self.current_fetch_line = line;
            self.stats.components.fetch_buffer_reads += 2;
            let outcome = self.l1i.access(line, false);
            if outcome.hit {
                self.stats.components.l1i_hits += 1;
                // Overlapped with execute: no stall on a hit.
            } else {
                self.stats.components.l1i_refills += 1;
                match self.try_l2_fill(line, false, self.now + self.config.l1i.miss_extra) {
                    Fill::Done(done) => self.now = done,
                    Fill::Suspended(l2out) => {
                        self.cont = Cont::FetchFill { instr, l2out };
                        return;
                    }
                }
            }
        }
        self.execute_body(instr);
    }

    fn execute_body(&mut self, instr: Instr) {
        let c = &self.config.core;
        let latency = match instr {
            Instr::IntAlu => {
                self.stats.components.int_alu_ops += 1;
                c.int_alu
            }
            Instr::IntMul => {
                self.stats.components.int_mul_ops += 1;
                c.int_mul
            }
            Instr::IntDiv => {
                self.stats.components.int_div_ops += 1;
                c.int_div
            }
            Instr::FpAlu => {
                self.stats.components.fp_ops += 1;
                c.fp_alu
            }
            Instr::FpMul => {
                self.stats.components.fp_ops += 1;
                c.fp_mul
            }
            Instr::FpDiv => {
                self.stats.components.fp_ops += 1;
                c.fp_div
            }
            Instr::Load { addr } => {
                self.execute_load(instr, addr);
                return;
            }
            Instr::Store { addr } => {
                self.execute_store(instr, addr);
                return;
            }
            Instr::Branch { taken, target } => {
                self.stats.branches += 1;
                if taken {
                    self.stats.taken_branches += 1;
                    self.pc = target;
                    c.int_alu + c.taken_branch_penalty
                } else {
                    c.int_alu
                }
            }
        };
        self.retire(instr, latency);
    }

    fn execute_load(&mut self, instr: Instr, addr: u64) {
        self.stats.loads += 1;
        self.wb.retire_completed(self.now);
        let line = addr / self.config.l1d.line_bytes;
        let start = self.now;
        let outcome = self.l1d.access(line, false);
        if outcome.hit {
            self.stats.components.l1d_hits += 1;
            self.retire(instr, self.config.l1d.hit_latency);
            return;
        }
        self.stats.components.l1d_refills += 1;
        self.handle_l1d_victim(&outcome);
        match self.try_l2_fill(
            line,
            false,
            start + self.config.l1d.hit_latency + self.config.l1d.miss_extra,
        ) {
            Fill::Done(done) => {
                self.stats.load_stall_cycles += done - start - self.config.l1d.hit_latency;
                self.retire(instr, done - start);
            }
            Fill::Suspended(l2out) => {
                self.cont = Cont::LoadFill {
                    instr,
                    start,
                    l2out,
                };
            }
        }
    }

    /// Stores retire into the write buffer; the drain happens in
    /// "background time" but is pre-computed here (the backends queue
    /// internally, so chronology is preserved).
    fn execute_store(&mut self, instr: Instr, addr: u64) {
        self.stats.stores += 1;
        self.wb.retire_completed(self.now);
        let mut issue = self.now;
        if self.wb.is_full() {
            let free_at = self.wb.earliest_completion();
            self.stats.wb_stall_cycles += free_at - self.now;
            issue = free_at;
            self.wb.retire_completed(free_at);
        }
        let line = addr / self.config.l1d.line_bytes;
        // The drain uses the cache port once the previous drain finished.
        let drain_start = issue.max(self.drain_port_free);
        let outcome = self.l1d.access(line, true);
        if outcome.hit {
            self.stats.components.l1d_hits += 1;
            self.finish_store(instr, issue, drain_start + self.config.l1d.hit_latency);
            return;
        }
        self.stats.components.l1d_refills += 1;
        self.handle_l1d_victim(&outcome);
        match self.try_l2_fill(
            line,
            true,
            drain_start + self.config.l1d.hit_latency + self.config.l1d.miss_extra,
        ) {
            Fill::Done(drain_done) => self.finish_store(instr, issue, drain_done),
            Fill::Suspended(l2out) => {
                self.cont = Cont::StoreFill {
                    instr,
                    issue,
                    l2out,
                };
            }
        }
    }

    fn finish_store(&mut self, instr: Instr, issue: Cycle, drain_done: Cycle) {
        self.drain_port_free = drain_done;
        self.wb.push(drain_done);
        // Core-visible cost: one cycle to enqueue, plus any stall above.
        self.retire(instr, (issue - self.now) + self.config.core.int_alu);
    }

    /// Shared retire epilogue: regfile accounting, cycle advance, PC
    /// increment, windowed sampling.
    fn retire(&mut self, instr: Instr, latency: Cycle) {
        if instr.is_fp() {
            self.stats.components.fp_regfile_accesses += 1;
        } else {
            self.stats.components.int_regfile_accesses += 1;
        }
        self.now += latency;
        self.stats.instructions += 1;
        self.pc += 4; // fixed-width ISA (MIPS-like)
        if self.stats.instructions >= self.next_window {
            self.stats.windows.push(WindowSample {
                instructions: self.stats.instructions,
                cycle: self.now,
                backend_requests: self.issued_requests,
            });
            self.next_window += self.config.window_instructions.expect("windows enabled");
        }
    }

    fn handle_l1d_victim(&mut self, outcome: &AccessOutcome) {
        // Dirty L1 victims drain into L2 (eviction buffers, Table 1);
        // charged as an L2 access for energy, overlapped for timing.
        if let Some(victim) = outcome.writeback {
            self.stats.components.l2_accesses += 1;
            let out = self.l2.access(victim, true);
            if !out.hit {
                // Inclusive hierarchy: the line must have been in L2; a
                // miss here means it was evicted concurrently — the fill
                // created above will write it back. Account the traffic:
                self.process_l2_eviction(&out, self.now);
            }
        }
    }

    /// An access that missed L1 and proceeds to L2 (and possibly below)
    /// starting at time `t`. On an L2 hit, completes synchronously; on an
    /// LLC miss, emits a [`StepEvent::DemandRead`] and suspends (the
    /// post-fill eviction bookkeeping runs in [`SteppedSim::resume`],
    /// when the completion time is known).
    fn try_l2_fill(&mut self, line: u64, write: bool, t: Cycle) -> Fill {
        self.stats.components.l2_accesses += 1;
        let outcome = self.l2.access(line, write);
        let t = t + self.config.l2.hit_latency;
        if outcome.hit {
            return Fill::Done(t);
        }
        // LLC miss → below-LLC event (ORAM or DRAM).
        self.stats.llc_demand_misses += 1;
        let t = t + self.config.l2.miss_extra;
        self.issued_requests += 1;
        self.pending_read_at = t;
        self.outbox.push_back(StepEvent::DemandRead {
            line_addr: line,
            at: t,
        });
        Fill::Suspended(outcome)
    }

    fn process_l2_eviction(&mut self, outcome: &AccessOutcome, when: Cycle) {
        if let Some(evicted) = outcome.evicted {
            // Inclusive L2: back-invalidate L1 copies.
            if let Some(l1_dirty) = self.l1d.invalidate(evicted) {
                // A dirty L1 copy makes the L2 line dirty on eviction.
                if l1_dirty && outcome.writeback.is_none() {
                    self.emit_writeback(evicted, when);
                    return;
                }
            }
            self.l1i.invalidate(evicted);
        }
        if let Some(victim) = outcome.writeback {
            // Dirty LLC eviction → ORAM/DRAM write-back (§3.1). Queued
            // after the demand miss; does not stall the core.
            self.emit_writeback(victim, when);
        }
    }

    fn emit_writeback(&mut self, line_addr: u64, at: Cycle) {
        self.stats.llc_writebacks += 1;
        self.issued_requests += 1;
        self.outbox
            .push_back(StepEvent::Writeback { line_addr, at });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::DramBackend;

    /// A stream with a fixed instruction vector, repeated.
    struct Script {
        instrs: Vec<Instr>,
        i: usize,
    }

    impl Script {
        fn new(instrs: Vec<Instr>) -> Self {
            Self { instrs, i: 0 }
        }
    }

    impl InstructionStream for Script {
        fn next_instr(&mut self) -> Instr {
            let instr = self.instrs[self.i % self.instrs.len()];
            self.i += 1;
            instr
        }
        fn name(&self) -> &str {
            "script"
        }
    }

    /// Appends a loop-back branch so the instruction footprint stays
    /// bounded (real programs loop; an unterminated straight-line PC walk
    /// would stream through the I-cache forever).
    fn looping(mut body: Vec<Instr>) -> Vec<Instr> {
        body.push(Instr::Branch {
            taken: true,
            target: 0x1000,
        });
        body
    }

    fn run(instrs: Vec<Instr>, n: u64) -> SimStats {
        let mut backend = DramBackend::new();
        Simulator::new(SimConfig::default()).run(&mut Script::new(instrs), &mut backend, n)
    }

    #[test]
    fn pure_alu_ipc_near_one() {
        // 31 single-cycle ops + a 3-cycle loop branch = 32 instr / 34 cyc.
        let s = run(looping(vec![Instr::IntAlu; 31]), 10_000);
        assert_eq!(s.instructions, 10_000);
        assert!(s.ipc() > 0.9, "ipc = {}", s.ipc());
    }

    #[test]
    fn div_heavy_is_slow() {
        let s = run(looping(vec![Instr::IntDiv; 31]), 1_000);
        assert!(s.ipc() < 0.1, "ipc = {}", s.ipc());
    }

    #[test]
    fn l1_resident_loads_cost_hit_latency() {
        // Loads over a 4 KB footprint fit in L1D: after warmup, each load
        // costs 2 cycles (plus the loop branch).
        let addrs: Vec<Instr> = (0..64).map(|i| Instr::Load { addr: i * 64 }).collect();
        let s = run(looping(addrs), 64_000);
        assert!(s.ipc() > 0.4 && s.ipc() < 0.6, "ipc = {}", s.ipc());
        assert!(s.components.l1d_hits > 60_000);
    }

    #[test]
    fn llc_misses_reach_backend() {
        // Stream over 4 MB (64k lines) — far beyond the 1 MB LLC.
        let addrs: Vec<Instr> = (0..65_536u64)
            .map(|i| Instr::Load { addr: i * 64 })
            .collect();
        let s = run(looping(addrs), 65_536);
        assert!(
            s.llc_demand_misses > 55_000,
            "misses = {}",
            s.llc_demand_misses
        );
        assert!(s.backend.dram_ctrl_lines > 0);
    }

    #[test]
    fn l1_resident_stores_drain_at_port_rate() {
        // Stores retire non-blocking, but the shared drain port sustains
        // one L1D hit per 2 cycles, so store-only code settles near 0.5
        // IPC — far better than blocking stores (2 cycles each + stall).
        let addrs: Vec<Instr> = (0..16).map(|i| Instr::Store { addr: i * 64 }).collect();
        let s = run(looping(addrs), 10_000);
        assert!(s.ipc() > 0.4, "ipc = {}", s.ipc());
        assert!(s.stores > 9_000);
    }

    #[test]
    fn store_bursts_to_memory_stall_on_full_buffer() {
        // Stores streaming over 8 MB miss everywhere; 8 entries fill up
        // and the core must stall on DRAM.
        let addrs: Vec<Instr> = (0..131_072u64)
            .map(|i| Instr::Store { addr: i * 64 })
            .collect();
        let s = run(looping(addrs), 50_000);
        assert!(s.wb_stall_cycles > 0, "no wb stalls recorded");
        assert!(s.ipc() < 0.9);
    }

    #[test]
    fn taken_branch_penalty_costs_cycles() {
        // Same instruction stream, penalty 2 vs penalty 0.
        let body = looping(vec![Instr::IntAlu; 7]);
        let mut backend = DramBackend::new();
        let base = Simulator::new(SimConfig::default()).run(
            &mut Script::new(body.clone()),
            &mut backend,
            8_000,
        );
        let mut cfg = SimConfig::default();
        cfg.core.taken_branch_penalty = 0;
        let mut backend2 = DramBackend::new();
        let fast = Simulator::new(cfg).run(&mut Script::new(body), &mut backend2, 8_000);
        assert!(base.cycles > fast.cycles);
        assert_eq!(base.taken_branches, 1_000);
    }

    #[test]
    fn windows_recorded_when_enabled() {
        let cfg = SimConfig {
            window_instructions: Some(1_000),
            ..SimConfig::default()
        };
        let mut backend = DramBackend::new();
        let s =
            Simulator::new(cfg).run(&mut Script::new(vec![Instr::IntAlu]), &mut backend, 10_000);
        assert_eq!(s.windows.len(), 10);
        assert_eq!(s.windows[0].instructions, 1_000);
        assert!(s.windows[9].cycle > s.windows[0].cycle);
    }

    #[test]
    fn finished_stream_stops_early() {
        struct Short(u32);
        impl InstructionStream for Short {
            fn next_instr(&mut self) -> Instr {
                self.0 += 1;
                Instr::IntAlu
            }
            fn finished(&self) -> bool {
                self.0 >= 10
            }
        }
        let mut backend = DramBackend::new();
        let s = Simulator::new(SimConfig::default()).run(&mut Short(0), &mut backend, 1_000);
        assert_eq!(s.instructions, 10);
    }

    #[test]
    fn warm_run_skips_compulsory_misses() {
        // Loads over a 512 KB footprint: cold run pays ~8k compulsory
        // misses; a warmed run over the same lines pays none.
        let body: Vec<Instr> = (0..8192u64).map(|i| Instr::Load { addr: i * 64 }).collect();
        let sim = Simulator::new(SimConfig::default());
        let mut cold_backend = DramBackend::new();
        let cold = sim.run(
            &mut Script::new(looping(body.clone())),
            &mut cold_backend,
            30_000,
        );
        let mut wl = Script::new(looping(body));
        let warm = sim.warm_caches(&mut wl, 20_000);
        let mut warm_backend = DramBackend::new();
        let warm_stats = sim.run_warm(&mut wl, &mut warm_backend, 30_000, warm);
        assert!(
            warm_stats.llc_demand_misses * 4 < cold.llc_demand_misses,
            "warm {} vs cold {}",
            warm_stats.llc_demand_misses,
            cold.llc_demand_misses
        );
        assert!(warm_stats.ipc() > cold.ipc());
    }

    #[test]
    fn deterministic_replay() {
        let mk = || {
            let addrs: Vec<Instr> = (0..4096u64)
                .map(|i| Instr::Load {
                    addr: (i * 7919) % (1 << 22) * 64,
                })
                .collect();
            run(addrs, 20_000)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.llc_demand_misses, b.llc_demand_misses);
    }

    #[test]
    fn stepped_demand_read_suspends_until_resume() {
        // A single far load: the core must emit exactly one DemandRead,
        // refuse to proceed without resume(), and charge the supplied
        // latency into the load stall.
        let mut core = SteppedSim::new(SimConfig::default());
        let mut wl = Script::new(looping(vec![Instr::Load { addr: 64 << 20 }]));
        let ev = core.next_event(&mut wl, 1);
        let StepEvent::DemandRead { at, .. } = ev else {
            panic!("expected DemandRead, got {ev:?}");
        };
        assert!(core.awaiting_resume());
        core.resume(at + 1_234);
        assert!(!core.awaiting_resume());
        assert_eq!(core.next_event(&mut wl, 1), StepEvent::Finished);
        assert_eq!(core.instructions(), 1);
        assert!(core.stats().load_stall_cycles >= 1_234);
    }

    #[test]
    #[should_panic(expected = "precedes the demand read's issue time")]
    fn stepped_resume_before_issue_time_panics() {
        let mut core = SteppedSim::new(SimConfig::default());
        let mut wl = Script::new(looping(vec![Instr::Load { addr: 64 << 20 }]));
        let StepEvent::DemandRead { at, .. } = core.next_event(&mut wl, 1) else {
            panic!("expected DemandRead");
        };
        core.resume(at - 1); // service cannot finish before it started
    }

    #[test]
    #[should_panic(expected = "call resume() first")]
    fn stepped_next_event_without_resume_panics() {
        let mut core = SteppedSim::new(SimConfig::default());
        let mut wl = Script::new(looping(vec![Instr::Load { addr: 64 << 20 }]));
        let _ = core.next_event(&mut wl, 4);
        let _ = core.next_event(&mut wl, 4); // suspended: must panic
    }

    #[test]
    fn stepped_larger_latency_costs_more_cycles() {
        // Same script, two latency assignments: the slower backend can
        // never finish earlier (the monotonicity the closed-loop host
        // relies on; the property suite generalizes this).
        let script: Vec<Instr> = (0..256u64)
            .map(|i| Instr::Load {
                addr: (i * 131) % (1 << 20) * 64,
            })
            .collect();
        let total = |latency: Cycle| {
            let mut core = SteppedSim::new(SimConfig::default());
            let mut wl = Script::new(looping(script.clone()));
            loop {
                match core.next_event(&mut wl, 2_000) {
                    StepEvent::DemandRead { at, .. } => core.resume(at + latency),
                    StepEvent::Writeback { .. } => {}
                    StepEvent::Finished => break,
                }
            }
            core.now()
        };
        assert!(total(2_000) > total(40));
    }
}
