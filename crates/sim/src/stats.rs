//! Simulation statistics: everything the performance *and* power models
//! consume.

use otc_dram::Cycle;

/// Per-component access counts the Table 2 power model multiplies by
/// energy coefficients.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComponentCounts {
    /// Integer ALU operations.
    pub int_alu_ops: u64,
    /// Integer multiply operations.
    pub int_mul_ops: u64,
    /// Integer divide operations.
    pub int_div_ops: u64,
    /// FP operations (all classes; FPU energy coefficient is per-op).
    pub fp_ops: u64,
    /// Integer register-file accesses (paper charges per instruction).
    pub int_regfile_accesses: u64,
    /// FP register-file accesses.
    pub fp_regfile_accesses: u64,
    /// Fetch-buffer reads (one per 256-bit fetch group).
    pub fetch_buffer_reads: u64,
    /// L1 I hits (charged as full-line accesses in Table 2).
    pub l1i_hits: u64,
    /// L1 I refills.
    pub l1i_refills: u64,
    /// L1 D hits (charged per 64-bit access).
    pub l1d_hits: u64,
    /// L1 D refills (full line).
    pub l1d_refills: u64,
    /// L2 hits + refills (same coefficient in Table 2).
    pub l2_accesses: u64,
}

/// What the memory backend did, for energy accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendEnergyProfile {
    /// Cache lines moved by the plain DRAM controller (base_dram).
    pub dram_ctrl_lines: u64,
    /// Total ORAM accesses (real + dummy) — each costs the paper's
    /// 984 nJ (§9.1.4).
    pub oram_accesses: u64,
    /// The dummy subset (reported separately; §10 notes a 34% average
    /// dummy fraction for the dynamic scheme).
    pub oram_dummy_accesses: u64,
}

/// One periodic sample for time-series figures (Fig. 2, Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSample {
    /// Retired instructions at the sample point.
    pub instructions: u64,
    /// Cycle at the sample point.
    pub cycle: Cycle,
    /// Backend requests (LLC misses + evictions) served so far.
    pub backend_requests: u64,
}

/// Full result of one simulation.
///
/// `PartialEq`/`Eq` compare every field — the stepped-vs-blocking
/// equivalence suite relies on exact equality.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total cycles elapsed.
    pub cycles: Cycle,
    /// Instructions retired.
    pub instructions: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// Branches retired.
    pub branches: u64,
    /// Taken branches.
    pub taken_branches: u64,
    /// Cycles the core spent stalled waiting on loads below L1 (includes
    /// backend time).
    pub load_stall_cycles: Cycle,
    /// Cycles the core spent stalled on a full write buffer.
    pub wb_stall_cycles: Cycle,
    /// LLC (L2) demand misses that went to the backend.
    pub llc_demand_misses: u64,
    /// Dirty LLC evictions written back to the backend.
    pub llc_writebacks: u64,
    /// Component access counts for the power model.
    pub components: ComponentCounts,
    /// Backend energy counts, captured at end of run.
    pub backend: BackendEnergyProfile,
    /// Periodic samples (empty unless `SimConfig::window_instructions`).
    pub windows: Vec<WindowSample>,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Average instructions between two backend accesses (the Fig. 2
    /// y-axis), over the whole run.
    pub fn instructions_per_backend_access(&self) -> f64 {
        let reqs = self.llc_demand_misses + self.llc_writebacks;
        if reqs == 0 {
            self.instructions as f64
        } else {
            self.instructions as f64 / reqs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_zero_cycles() {
        assert_eq!(SimStats::default().ipc(), 0.0);
    }

    #[test]
    fn ipc_math() {
        let s = SimStats {
            cycles: 200,
            instructions: 50,
            ..Default::default()
        };
        assert!((s.ipc() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn instr_per_access_with_no_accesses() {
        let s = SimStats {
            instructions: 1000,
            ..Default::default()
        };
        assert_eq!(s.instructions_per_backend_access(), 1000.0);
    }
}
