//! Criterion micro-benchmarks for the core data structures: Path ORAM
//! access throughput, rate-learner arithmetic, discretization, leakage
//! bignum, cache lookups, enforcer request path and workload generation.
//! These quantify the *simulator's* costs (not the simulated machine's).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use otc_core::{
    unprotected_trace_count, DividerImpl, PerfCounters, RateLimitedOramBackend, RatePolicy,
    RatePredictor, RateSet,
};
use otc_dram::DdrConfig;
use otc_oram::{OramConfig, RecursivePathOram};
use otc_sim::instr::InstructionStream;
use otc_sim::{AccessKind, CacheConfig, MemoryBackend};
use otc_workloads::SpecBenchmark;

fn bench_oram_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("oram");
    group.bench_function("small_config_read", |b| {
        let mut oram = RecursivePathOram::new(OramConfig::small()).expect("valid");
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 97) % 200;
            std::hint::black_box(oram.read(addr));
        });
    });
    group.bench_function("paper_config_read", |b| {
        let mut oram = RecursivePathOram::new(OramConfig::paper()).expect("valid");
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 7919) % 100_000;
            std::hint::black_box(oram.read(addr));
        });
    });
    group.bench_function("paper_config_dummy", |b| {
        let mut oram = RecursivePathOram::new(OramConfig::paper()).expect("valid");
        b.iter(|| oram.dummy_access());
    });
    group.finish();
}

fn bench_learner(c: &mut Criterion) {
    let mut group = c.benchmark_group("learner");
    let counters = PerfCounters {
        access_count: 12_345,
        oram_cycles: 12_345 * 1_488,
        waste: 1_000_000,
    };
    let rates = RateSet::paper(4);
    group.bench_function("predict_shift", |b| {
        let p = RatePredictor::new(DividerImpl::ShiftRegister);
        b.iter(|| std::hint::black_box(p.predict(1 << 30, &counters, &rates)));
    });
    group.bench_function("predict_exact", |b| {
        let p = RatePredictor::new(DividerImpl::Exact);
        b.iter(|| std::hint::black_box(p.predict(1 << 30, &counters, &rates)));
    });
    group.bench_function("discretize_r16", |b| {
        let r16 = RateSet::paper(16);
        let mut x = 0u64;
        b.iter(|| {
            x = (x + 997) % 40_000;
            std::hint::black_box(r16.discretize(x));
        });
    });
    group.finish();
}

fn bench_enforcer(c: &mut Criterion) {
    c.bench_function("enforcer/request_static", |b| {
        b.iter_batched(
            || {
                let mut be = RateLimitedOramBackend::new(
                    OramConfig::small(),
                    &DdrConfig::default(),
                    RatePolicy::Static { rate: 256 },
                )
                .expect("valid");
                be.set_trace_recording(false);
                be
            },
            |mut be| {
                let mut now = 0;
                for i in 0..64u64 {
                    now = be.request(i, AccessKind::Read, now);
                }
                std::hint::black_box(be.slots_served())
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_leakage(c: &mut Criterion) {
    c.bench_function("leakage/trace_count_t10k_olat1488", |b| {
        b.iter(|| std::hint::black_box(unprotected_trace_count(10_000, 1_488)));
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/l2_access", |b| {
        let mut cache = otc_sim::Cache::new(CacheConfig {
            capacity_bytes: 1 << 20,
            ways: 16,
            line_bytes: 64,
            hit_latency: 10,
            miss_extra: 4,
        });
        let mut line = 0u64;
        b.iter(|| {
            line = (line + 7919) % 100_000;
            std::hint::black_box(cache.access(line, false));
        });
    });
}

fn bench_workloads(c: &mut Criterion) {
    c.bench_function("workload/mcf_instr_gen", |b| {
        let mut wl = SpecBenchmark::Mcf.workload(1_000_000);
        b.iter(|| std::hint::black_box(wl.next_instr()));
    });
}

criterion_group!(
    benches,
    bench_oram_access,
    bench_learner,
    bench_enforcer,
    bench_leakage,
    bench_cache,
    bench_workloads
);
criterion_main!(benches);
