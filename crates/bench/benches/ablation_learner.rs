//! **Ablation study** (extension; DESIGN.md §5): design choices inside
//! the rate learner.
//!
//! 1. Divider implementation (§7.2): Algorithm 1's shift-register divide
//!    (rounds AccessCount up to the next power of two, undersetting the
//!    rate by ≤2×) vs an exact divide.
//! 2. Predictor (§7.3): the simple Equation-1 averager vs the
//!    overhead-aware knee-finder the paper sketches, at two sharpness
//!    settings.
//!
//! The paper's claims to check: the shifter's underset bias is harmless
//! (it compensates for burstiness); the sophisticated predictor "chooses
//! similar rates" at |R| = 4.

use otc_bench::{instruction_budget, print_table, run_pair, RunConfig};
use otc_core::{
    DividerImpl, EpochSchedule, OverheadPredictor, PerfCounters, RatePredictor, RateSet, Scheme,
};
use otc_workloads::SpecBenchmark;

fn main() {
    let cfg = RunConfig {
        instructions: instruction_budget(1_000_000),
        ..Default::default()
    };
    let benches = [
        SpecBenchmark::Mcf,
        SpecBenchmark::Gobmk,
        SpecBenchmark::Hmmer,
        SpecBenchmark::H264ref,
    ];

    // --- Part 1: divider ablation, measured end-to-end. ---
    println!("== Ablation 1: Algorithm-1 shifter vs exact divide (end-to-end) ==");
    let mut rows = Vec::new();
    for bench in benches {
        let base = run_pair(bench, &Scheme::BaseDram, &cfg);
        let mut cells = Vec::new();
        for divider in [DividerImpl::ShiftRegister, DividerImpl::Exact] {
            // Scheme::Dynamic uses the shifter; build the exact variant
            // via a custom run below. Reuse run_pair by swapping in the
            // enforcer directly:
            let r = run_with_divider(bench, divider, &cfg);
            cells.push(format!("{:.2}", r / base.stats.cycles as f64));
        }
        rows.push((bench.full_name().to_string(), cells));
    }
    print_table("perf overhead x vs base_dram", &["shifter", "exact"], &rows);
    println!(
        "expectation: near-identical columns — the ≤2x underset bias moves raw \
         predictions within a lg-spaced candidate gap (§7.2/§7.3)."
    );

    // --- Part 2: predictor ablation on a synthetic load sweep. ---
    println!("\n== Ablation 2: Equation-1 averager vs §7.3 overhead-aware knee ==");
    let rates = RateSet::paper(4);
    let olat = 1_488;
    let epoch = 1u64 << 22;
    let simple = RatePredictor::new(DividerImpl::Exact);
    let knee_tight = OverheadPredictor::new(olat, 0.05);
    let knee_loose = OverheadPredictor::new(olat, 0.30);
    let mut rows = Vec::new();
    for gap_exp in [7u32, 9, 11, 13, 15] {
        let gap = 1u64 << gap_exp;
        let accesses = epoch / (gap + olat);
        let c = PerfCounters {
            access_count: accesses,
            oram_cycles: accesses * olat,
            waste: 0,
        };
        rows.push((
            format!("offered_gap=2^{gap_exp}"),
            vec![
                simple.predict(epoch, &c, &rates).to_string(),
                knee_tight.predict(epoch, &c, &rates).to_string(),
                knee_loose.predict(epoch, &c, &rates).to_string(),
            ],
        ));
    }
    print_table(
        "chosen rate per offered load",
        &["eq1_simple", "knee_s=.05", "knee_s=.30"],
        &rows,
    );
    println!(
        "expectation: agreement at the extremes; the sharpness knob shifts \
         mid-load choices toward slower (power-saving) rates — the paper's \
         performance/power trade-off dial (§7.3)."
    );
    let _ = EpochSchedule::scaled(4); // (schedule constant across ablations)
}

/// Runs one benchmark with the dynamic scheme using `divider`, returning
/// total cycles.
fn run_with_divider(bench: SpecBenchmark, divider: DividerImpl, cfg: &RunConfig) -> f64 {
    use otc_core::{RateLimitedOramBackend, RatePolicy};
    use otc_dram::DdrConfig;
    use otc_sim::{SimConfig, Simulator};

    let ddr = DdrConfig::default();
    let mut wl = bench.workload(cfg.instructions);
    let sim = Simulator::new(SimConfig::default());
    let warm = sim.warm_caches(&mut wl, cfg.warmup_instructions);
    let mut backend = RateLimitedOramBackend::new(
        cfg.oram.clone(),
        &ddr,
        RatePolicy::Dynamic {
            rates: RateSet::paper(4),
            schedule: EpochSchedule::scaled(4),
            divider,
            initial_rate: 10_000,
        },
    )
    .expect("valid config");
    backend.set_trace_recording(false);
    let stats = sim.run_warm(&mut wl, &mut backend, cfg.instructions, warm);
    stats.cycles as f64
}
