//! **Figure 1(a) / Example 2.1**: the malicious program P1 leaks one
//! secret bit per time step through ORAM access timing on an unprotected
//! controller, and leaks *nothing* through a rate-enforced one. This
//! bench runs the actual attack end-to-end: P1 executes on the full
//! cycle-level processor, the adversary records the access-time trace,
//! and the decoder tries to recover the secret.

use otc_attacks::{decode_trace, recovery_accuracy, MaliciousProgram};
use otc_core::{RateLimitedOramBackend, RatePolicy, UnprotectedOramBackend};
use otc_crypto::SplitMix64;
use otc_dram::DdrConfig;
use otc_oram::OramConfig;
use otc_sim::{SimConfig, Simulator};

fn random_bits(n: usize, seed: u64) -> Vec<bool> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_below(2) == 1).collect()
}

fn main() {
    let nbits = 48;
    let secret = random_bits(nbits, 0x5EC3E7);
    let sim = Simulator::new(SimConfig::default());
    let ddr = DdrConfig::default();
    let oram_cfg = OramConfig::paper();

    // ---- Unprotected ORAM (base_oram): the attack works. ----
    // Calibration runs (attacker privilege: the program is public, so it
    // can profile prologue and zero-bit wall-clock offline on its own
    // data): empty-secret run measures the prologue; an all-zeros run
    // measures the per-zero window.
    let run_cal = |bits: Vec<bool>| {
        let mut cal = MaliciousProgram::new(bits);
        let mut cal_backend = UnprotectedOramBackend::new(oram_cfg.clone(), &ddr).expect("valid");
        sim.run(&mut cal, &mut cal_backend, u64::MAX).cycles
    };
    let prologue_cycles = run_cal(vec![]);
    let zero_window = (run_cal(vec![false; 8]) - prologue_cycles) / 8;

    let mut p1 = MaliciousProgram::new(secret.clone());
    let mut backend = UnprotectedOramBackend::new(oram_cfg.clone(), &ddr).expect("valid");
    let stats = sim.run(&mut p1, &mut backend, u64::MAX);
    let decoded = decode_trace(
        backend.trace(),
        backend.olat(),
        p1.loads_per_one(),
        zero_window,
        prologue_cycles,
        stats.cycles,
    );
    let acc = recovery_accuracy(&secret, &decoded);
    println!("== Figure 1(a): malicious program P1 vs base_oram ==");
    println!(
        "secret bits: {nbits}; trace accesses observed: {}; decoder accuracy: {:.1}%",
        backend.trace().len(),
        acc * 100.0
    );
    println!("paper: P1 leaks T bits in T time on an unprotected ORAM (Example 2.1)");

    // ---- Static rate: the observable trace is secret-independent. ----
    let run_static = |bits: Vec<bool>| {
        let mut p1 = MaliciousProgram::new(bits);
        let mut backend =
            RateLimitedOramBackend::new(oram_cfg.clone(), &ddr, RatePolicy::Static { rate: 1_000 })
                .expect("valid");
        let stats = sim.run(&mut p1, &mut backend, u64::MAX);
        let trace: Vec<u64> = backend.trace().iter().map(|s| s.start).collect();
        (trace, stats.cycles)
    };
    let other_secret = random_bits(nbits, 0xD1FF);
    let (trace_a, end_a) = run_static(secret.clone());
    let (trace_b, end_b) = run_static(other_secret);
    // The observable ORAM-timing channel is the trace up to the earlier
    // termination; termination time itself is the separate lg-Tmax
    // channel (§6).
    let horizon = end_a.min(end_b);
    let pa: Vec<u64> = trace_a.into_iter().filter(|&t| t < horizon).collect();
    let pb: Vec<u64> = trace_b.into_iter().filter(|&t| t < horizon).collect();
    println!("\n== P1 vs static_1000 (strictly periodic) ==");
    println!(
        "traces for two different {nbits}-bit secrets identical up to min termination: {}",
        pa == pb
    );
    println!("paper: a single periodic rate yields exactly 1 trace -> lg 1 = 0 bits (Example 2.1)");
}
