//! **Leakage arithmetic**: regenerates every worked leakage number in the
//! paper — Example 2.1, §6's termination-channel bounds, Example 6.1,
//! §9.1.5's baseline, the §9.3/§9.5 configuration bounds, and the
//! unprotected-ORAM trace count (exact, via in-repo bignum, plus the
//! closed-form asymptotic).

use otc_core::{
    probabilistic_learn_probability, unprotected_leakage_bits_approx, unprotected_trace_count,
    EpochSchedule, LeakageModel, Scheme,
};

fn main() {
    println!("== Example 2.1 ==");
    println!(
        "P1 over T time steps: 2^T traces -> T bits (e.g. T=32: {} bits)",
        (0..32)
            .fold(otc_core::BigNat::one(), |n, _| n.add(&n))
            .log2()
    );
    println!("single periodic rate: 1 trace -> lg 1 = 0 bits");

    println!("\n== §6: early-termination channel ==");
    let m = LeakageModel::new(4, EpochSchedule::paper(4));
    println!(
        "lg Tmax = {} bits (paper: 62 at Tmax = 2^62 cycles = ~150 years @1GHz)",
        m.termination_bits()
    );
    let discretized =
        LeakageModel::new(4, EpochSchedule::paper(4)).with_termination_discretization(30);
    println!(
        "rounded up to 2^30 cycles: {} bits (paper: 32)",
        discretized.termination_bits()
    );

    println!("\n== Example 6.1: epoch doubling, |R| = 4, Tmax = 2^62, E0 = 2^30 ==");
    let doubling = LeakageModel::new(4, EpochSchedule::paper(2));
    println!(
        "epochs = {} (paper 32); ORAM-timing bits = {} (paper 64); with termination = {} (paper 126)",
        doubling.schedule().total_epochs(),
        doubling.oram_timing_bits(),
        doubling.total_bits()
    );

    println!("\n== Example 6.1 footnote: unprotected ORAM trace count ==");
    for (t, olat) in [(1_000u64, 1_488u64), (100_000, 1_488), (1_000_000, 1_488)] {
        let exact = unprotected_trace_count(t, olat);
        let approx = unprotected_leakage_bits_approx(t as f64, olat as f64);
        println!(
            "  T = {t:>9}, OLAT = {olat}: lg(#traces) = {:.1} bits exact ({:.1} asymptotic)",
            exact.log2(),
            approx
        );
    }
    println!("  -> astronomically above the dynamic scheme's 32-bit bound, as §6.1 argues");
    let small = unprotected_trace_count(20, 3);
    println!("  (sanity: T=20, OLAT=3 -> exactly {small} traces)");

    println!("\n== §9.1.5 / §9.3 / §9.5 configuration bounds ==");
    for scheme in [
        Scheme::dynamic(4, 2),
        Scheme::dynamic(4, 4),
        Scheme::dynamic(4, 8),
        Scheme::dynamic(4, 16),
        Scheme::dynamic(2, 2),
        Scheme::dynamic(8, 2),
        Scheme::dynamic(16, 2),
        Scheme::Static { rate: 300 },
    ] {
        println!(
            "  {:<16} ORAM-timing {:>5.0} bits; + termination 62 -> total {:>5.0}",
            scheme.label(),
            scheme.oram_timing_leakage_bits(),
            scheme.oram_timing_leakage_bits() + 62.0
        );
    }
    println!("  paper: dynamic_R4_E4 = 32 (+62 = 94); dynamic_R4_E16 = 16; static = 0 (+62)");

    println!("\n== §10: probabilistic-leakage subtlety ==");
    for l_prime in [1u32, 3, 8] {
        println!(
            "  2 traces (l=1), adversary targets l'={l_prime} bits: succeeds w.p. {:.4} \
             (paper: (2^l - 1)/2^l')",
            probabilistic_learn_probability(1, l_prime)
        );
    }
}
