//! **Table 1 / §9.1.2**: the timing model and its derived quantities.
//! Prints the configured microarchitecture next to the paper's values and
//! verifies the two headline derivations: 1488 CPU cycles per ORAM access
//! and 24.2 KB moved over the pins per access (758 sixteen-byte chunks
//! per direction).

use otc_dram::{DdrConfig, FlatDram};
use otc_oram::{OramConfig, OramTiming};
use otc_sim::SimConfig;

fn main() {
    let sim = SimConfig::default();
    let ddr = DdrConfig::default();
    let oram = OramConfig::paper();
    let timing = OramTiming::derive(&oram, &ddr);

    println!("== Table 1: timing model (reproduction vs paper) ==");
    println!("core: in-order single-issue @ 1 GHz");
    println!(
        "  int alu/mul/div latencies: {}/{}/{} (paper 1/4/12)",
        sim.core.int_alu, sim.core.int_mul, sim.core.int_div
    );
    println!(
        "  fp alu/mul/div latencies:  {}/{}/{} (paper 2/4/10)",
        sim.core.fp_alu, sim.core.fp_mul, sim.core.fp_div
    );
    println!(
        "  write buffer entries: {} (paper 8, non-blocking)",
        sim.write_buffer_entries
    );
    println!(
        "caches: L1I {} KB/{}-way, L1D {} KB/{}-way, L2 {} MB/{}-way, {} B lines",
        sim.l1i.capacity_bytes >> 10,
        sim.l1i.ways,
        sim.l1d.capacity_bytes >> 10,
        sim.l1d.ways,
        sim.l2.capacity_bytes >> 20,
        sim.l2.ways,
        sim.l2.line_bytes
    );
    println!(
        "  latencies: L1I {}+{}, L1D {}+{}, L2 {}+{} (paper 1+0 / 2+1 / 10+4)",
        sim.l1i.hit_latency,
        sim.l1i.miss_extra,
        sim.l1d.hit_latency,
        sim.l1d.miss_extra,
        sim.l2.hit_latency,
        sim.l2.miss_extra
    );
    println!(
        "memory: {} channels, {} B/DRAM-cycle pins; base_dram flat latency {} cycles (paper 40)",
        ddr.channels,
        ddr.pin_bytes_per_dram_cycle,
        FlatDram::paper_default().latency()
    );

    println!("\n== Derived ORAM access profile (reproduction vs paper §9.1.2) ==");
    println!(
        "ORAM capacity:            {} GB      (paper 4 GB, 1 GB working set)",
        oram.capacity_bytes() >> 30
    );
    println!(
        "recursion:                {} posmap levels (paper 3), Z = {}, 64 B data / 32 B posmap blocks",
        oram.posmaps.len(),
        oram.data.z()
    );
    println!(
        "bytes per direction:      {} B   = {} chunks (paper 12.1 KB = 758 chunks)",
        oram.bytes_per_direction(),
        oram.bytes_per_direction() / 16
    );
    println!(
        "bytes per access:         {} B   (paper 24.2 KB)",
        timing.transfer.bytes
    );
    println!(
        "DRAM cycles per access:   {}       (paper 1984)",
        timing.dram_cycles
    );
    println!(
        "CPU-cycle access latency: {}       (paper 1488)",
        timing.latency
    );

    assert_eq!(timing.latency, 1488, "calibration must match the paper");
    assert_eq!(timing.transfer.bytes, 24_256);
    println!("\nall Table 1 derivations match the paper exactly.");
}
