//! **Figure 8a / §9.5**: leakage-reduction study over `|R|`. With epoch
//! doubling fixed (E2), vary the candidate-rate count |R| in
//! {16, 8, 4, 2} and report per-benchmark performance overhead and power.
//! Halving lg|R| halves the ORAM-timing leakage; the paper reports that
//! going from R16 to R4 costs ~2% performance and ~7% power while halving
//! the leakage, and that R2 hurts mid-range benchmarks (neither extreme
//! rate fits them).

use otc_bench::{geomean, instruction_budget, mean, print_table, run_pair, RunConfig};
use otc_core::Scheme;
use otc_workloads::SpecBenchmark;

fn main() {
    let cfg = RunConfig {
        instructions: instruction_budget(1_500_000),
        ..Default::default()
    };
    let rate_counts = [16usize, 8, 4, 2];
    let benches = SpecBenchmark::figure6_lineup();

    println!(
        "Figure 8a reproduction: {} instructions per run",
        cfg.instructions
    );

    let mut perf_rows = Vec::new();
    let mut power_rows = Vec::new();
    let mut per_cfg_perf: Vec<Vec<f64>> = vec![Vec::new(); rate_counts.len()];
    let mut per_cfg_power: Vec<Vec<f64>> = vec![Vec::new(); rate_counts.len()];

    for bench in &benches {
        let base = run_pair(*bench, &Scheme::BaseDram, &cfg);
        let mut perf_cells = Vec::new();
        let mut power_cells = Vec::new();
        for (ci, &rc) in rate_counts.iter().enumerate() {
            let r = run_pair(*bench, &Scheme::dynamic(rc, 2), &cfg);
            let overhead = otc_bench::perf_overhead(&r, &base);
            per_cfg_perf[ci].push(overhead);
            per_cfg_power[ci].push(r.power.total_watts());
            perf_cells.push(format!("{overhead:.2}"));
            power_cells.push(format!("{:.3}", r.power.total_watts()));
        }
        perf_rows.push((bench.short_name().to_string(), perf_cells));
        power_rows.push((bench.short_name().to_string(), power_cells));
    }

    let labels: Vec<String> = rate_counts
        .iter()
        .map(|rc| format!("dynamic_R{rc}_E2"))
        .collect();
    let columns: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();

    perf_rows.push((
        "Avg".into(),
        per_cfg_perf
            .iter()
            .map(|v| format!("{:.2}", geomean(v)))
            .collect(),
    ));
    power_rows.push((
        "Avg".into(),
        per_cfg_power
            .iter()
            .map(|v| format!("{:.3}", mean(v)))
            .collect(),
    ));
    print_table(
        "Figure 8a (top): perf overhead x vs base_dram, varying |R|",
        &columns,
        &perf_rows,
    );
    print_table("Figure 8a (bottom): power, Watts", &columns, &power_rows);

    println!("\nleakage bound per configuration (scaled schedule preserves paper epoch counts):");
    for &rc in &rate_counts {
        let s = Scheme::dynamic(rc, 2);
        println!(
            "  {:<16} {:>6.0} bits",
            s.label(),
            s.oram_timing_leakage_bits()
        );
    }
    println!(
        "paper: R16→R4 at E2 improves performance ~2%, costs ~7% power, halves leakage \
         (128→64 bits at paper scale); R2 raises power on mid-range benchmarks \
         (gobmk, gcc) because {{256, 32768}} fits neither."
    );
}
