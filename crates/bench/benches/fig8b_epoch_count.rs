//! **Figure 8b / §9.5**: leakage-reduction study over `|E|`. With
//! |R| = 4 fixed, vary the epoch growth factor in {2, 4, 8, 16}: fewer,
//! longer epochs mean fewer rate choices and proportionally less leakage.
//! The paper reports that E16 (16-bit leakage) costs only ~5% performance
//! vs E4 (32-bit) while slightly *reducing* power; the main casualty is
//! h264ref, which gets stuck with a slow rate chosen before its
//! memory-bound phase.

use otc_bench::{geomean, instruction_budget, mean, print_table, run_pair, RunConfig};
use otc_core::Scheme;
use otc_workloads::SpecBenchmark;

fn main() {
    let cfg = RunConfig {
        instructions: instruction_budget(1_500_000),
        ..Default::default()
    };
    let growths = [2u32, 4, 8, 16];
    let benches = SpecBenchmark::figure6_lineup();

    println!(
        "Figure 8b reproduction: {} instructions per run",
        cfg.instructions
    );

    let mut perf_rows = Vec::new();
    let mut power_rows = Vec::new();
    let mut per_cfg_perf: Vec<Vec<f64>> = vec![Vec::new(); growths.len()];
    let mut per_cfg_power: Vec<Vec<f64>> = vec![Vec::new(); growths.len()];

    for bench in &benches {
        let base = run_pair(*bench, &Scheme::BaseDram, &cfg);
        let mut perf_cells = Vec::new();
        let mut power_cells = Vec::new();
        for (ci, &g) in growths.iter().enumerate() {
            let r = run_pair(*bench, &Scheme::dynamic(4, g), &cfg);
            let overhead = otc_bench::perf_overhead(&r, &base);
            per_cfg_perf[ci].push(overhead);
            per_cfg_power[ci].push(r.power.total_watts());
            perf_cells.push(format!("{overhead:.2}"));
            power_cells.push(format!("{:.3}", r.power.total_watts()));
        }
        perf_rows.push((bench.short_name().to_string(), perf_cells));
        power_rows.push((bench.short_name().to_string(), power_cells));
    }

    let labels: Vec<String> = growths.iter().map(|g| format!("dynamic_R4_E{g}")).collect();
    let columns: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();

    perf_rows.push((
        "Avg".into(),
        per_cfg_perf
            .iter()
            .map(|v| format!("{:.2}", geomean(v)))
            .collect(),
    ));
    power_rows.push((
        "Avg".into(),
        per_cfg_power
            .iter()
            .map(|v| format!("{:.3}", mean(v)))
            .collect(),
    ));
    print_table(
        "Figure 8b (top): perf overhead x vs base_dram, varying epoch growth",
        &columns,
        &perf_rows,
    );
    print_table("Figure 8b (bottom): power, Watts", &columns, &power_rows);

    println!("\nleakage bound per configuration:");
    for &g in &growths {
        let s = Scheme::dynamic(4, g);
        println!(
            "  {:<16} {:>6.0} bits",
            s.label(),
            s.oram_timing_leakage_bits()
        );
    }
    println!(
        "paper: E4→E16 reduces ORAM-timing leakage 32→16 bits for ~5% average \
         performance and ~3% power *savings*; h264ref suffers most (slow rate \
         locked in before its late memory-bound phase)."
    );
}
