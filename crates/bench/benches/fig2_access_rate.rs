//! **Figure 2 / §1.1.2**: ORAM access rate over time, across inputs to
//! the same program. perlbench's `diffmail` input accesses ORAM roughly
//! two orders of magnitude more often than `splitmail`; astar's `rivers`
//! input has a steady rate while `biglakes` drifts as the program runs.
//! This is the motivation for *dynamic* rate selection: no single offline
//! rate fits both inputs, let alone both halves of `biglakes`.

use otc_bench::{instruction_budget, print_table, run_pair, RunConfig};
use otc_core::Scheme;
use otc_workloads::SpecBenchmark;

fn main() {
    let instructions = instruction_budget(2_000_000);
    let windows = 10u64;
    let cfg = RunConfig {
        instructions,
        window_instructions: Some(instructions / windows),
        ..Default::default()
    };

    println!(
        "Figure 2 reproduction: {instructions} instructions per run, {windows} windows \
         (paper plots 100M-instruction windows over 200-250B-instruction runs)"
    );

    let pairs = [
        (
            SpecBenchmark::PerlbenchDiffmail,
            SpecBenchmark::PerlbenchSplitmail,
        ),
        (SpecBenchmark::AstarRivers, SpecBenchmark::AstarBigLakes),
    ];

    for (a, b) in pairs {
        let mut rows = Vec::new();
        let mut overall = Vec::new();
        for bench in [a, b] {
            // The paper measures the demand rate of the program itself;
            // base_oram exposes it directly (no dummy traffic).
            let r = run_pair(bench, &Scheme::BaseOram, &cfg);
            let mut cells = Vec::new();
            let mut prev = (0u64, 0u64); // (instr, requests)
            for w in &r.stats.windows {
                let di = w.instructions - prev.0;
                let dr = w.backend_requests - prev.1;
                prev = (w.instructions, w.backend_requests);
                let interval = if dr == 0 {
                    di as f64
                } else {
                    di as f64 / dr as f64
                };
                cells.push(format!("{interval:.0}"));
            }
            // Steady-state interval: averaged over the last third of the
            // run (warmup compulsory misses otherwise dominate at scaled
            // run lengths).
            let tail = &r.stats.windows[(windows as usize * 2 / 3)..];
            let di = tail.last().map(|w| w.instructions).unwrap_or(0)
                - tail.first().map(|w| w.instructions).unwrap_or(0);
            let dr = tail.last().map(|w| w.backend_requests).unwrap_or(0)
                - tail.first().map(|w| w.backend_requests).unwrap_or(0);
            let steady = if dr == 0 {
                di as f64
            } else {
                di as f64 / dr as f64
            };
            overall.push((bench.full_name().to_string(), steady));
            rows.push((bench.full_name().to_string(), cells));
        }
        let window_labels: Vec<String> = (1..=windows).map(|i| format!("w{i}")).collect();
        let columns: Vec<&str> = window_labels.iter().map(|s| s.as_str()).collect();
        print_table(
            "Figure 2: average instructions between 2 ORAM accesses, per window",
            &columns,
            &rows,
        );
        let ratio = overall[1].1.max(overall[0].1) / overall[1].1.min(overall[0].1).max(1e-9);
        println!(
            "steady-state averages (last third): {} = {:.0}, {} = {:.0}  (ratio {ratio:.0}x)",
            overall[0].0, overall[0].1, overall[1].0, overall[1].1
        );
    }

    println!(
        "\npaper shape: perlbench/diffmail sits ~80x below perlbench/splitmail on \
         the instructions-between-accesses axis; astar/rivers is flat while \
         astar/biglakes falls continuously over the run."
    );
}
