//! **Table 2 / §9.1.3–9.1.4**: the energy model. Prints every coefficient
//! and reproduces the paper's per-ORAM-access energy derivation:
//! `2·758 chunks × (AES 0.416 + stash 0.134) + 1984 DRAM cycles × 0.076
//! ≈ 984 nJ`.

use otc_dram::DdrConfig;
use otc_oram::{OramConfig, OramTiming};
use otc_power::{oram_access_energy_nj, EnergyCoefficients};

fn main() {
    let c = EnergyCoefficients::table2();
    println!("== Table 2: processor energy model, 45 nm (nJ) ==");
    let rows = [
        ("ALU/FPU (per instruction)", c.alu_fpu_per_instr, 0.0148),
        (
            "Reg file int (per instruction)",
            c.regfile_int_per_instr,
            0.0032,
        ),
        (
            "Reg file fp (per instruction)",
            c.regfile_fp_per_instr,
            0.0048,
        ),
        ("Fetch buffer (256 bits)", c.fetch_buffer_read, 0.0003),
        ("L1 I hit/refill (line)", c.l1i_access, 0.162),
        ("L1 D hit (64 bits)", c.l1d_hit, 0.041),
        ("L1 D refill (line)", c.l1d_refill, 0.320),
        ("L2 hit/refill (line)", c.l2_access, 0.810),
        ("DRAM controller (line)", c.dram_ctrl_per_line, 0.303),
        ("L1 I leakage (per cycle)", c.l1i_leak_per_cycle, 0.018),
        ("L1 D leakage (per cycle)", c.l1d_leak_per_cycle, 0.019),
        ("L2 leakage (per hit/refill)", c.l2_leak_per_access, 0.767),
        ("AES (per 16 B chunk)", c.aes_per_chunk, 0.416),
        ("Stash (per 16 B rd/wr)", c.stash_per_chunk, 0.134),
    ];
    for (name, ours, paper) in rows {
        println!("  {name:<34} {ours:>8.4}  (paper {paper})");
        assert!((ours - paper).abs() < 1e-9, "{name} drifted from Table 2");
    }

    println!("\n== §9.1.4: energy per ORAM access ==");
    let timing = OramTiming::derive(&OramConfig::paper(), &DdrConfig::default());
    let nj = oram_access_energy_nj(timing.chunks_per_access(), timing.dram_cycles, &c);
    println!(
        "  {} chunks x ({} + {}) + {} DRAM cycles x {} = {:.1} nJ  (paper ~984 nJ)",
        timing.chunks_per_access(),
        c.aes_per_chunk,
        c.stash_per_chunk,
        timing.dram_cycles,
        c.dram_ctrl_per_cycle,
        nj
    );
    assert!((nj - 984.0).abs() < 2.0);
    println!("\nall Table 2 values and the 984 nJ derivation match the paper.");
}
