//! **Figure 7 / §9.4**: IPC over time (windowed) for libquantum, gobmk
//! and h264ref under `base_oram`, `dynamic_R4_E2` and `static_1300`, with
//! the dynamic scheme's epoch transitions marked. The paper's
//! observations to reproduce:
//!
//! * libquantum (memory-bound): dynamic tracks base_oram closely (within
//!   ~8%).
//! * gobmk: erratic early, settles onto a mid rate (1290) — after which
//!   it behaves like static_1300.
//! * h264ref: compute-bound early (slowest rate), switches to a faster
//!   rate at the epoch transition after its memory-bound phase begins.

use otc_bench::{instruction_budget, print_table, run_pair, RunConfig};
use otc_core::Scheme;
use otc_workloads::SpecBenchmark;

fn main() {
    let instructions = instruction_budget(3_000_000);
    let windows = 12u64;
    let cfg = RunConfig {
        instructions,
        window_instructions: Some(instructions / windows),
        ..Default::default()
    };
    let schemes = [
        Scheme::BaseOram,
        Scheme::dynamic(4, 2),
        Scheme::Static { rate: 1300 },
    ];

    println!(
        "Figure 7 reproduction: {instructions} instructions per run, {windows} windows \
         (paper plots 1B-instruction windows; DESIGN.md scale maps these to {} )",
        instructions / windows
    );

    for bench in [
        SpecBenchmark::Libquantum,
        SpecBenchmark::Gobmk,
        SpecBenchmark::H264ref,
    ] {
        let mut rows = Vec::new();
        let mut dynamic_info = None;
        for scheme in &schemes {
            let r = run_pair(bench, scheme, &cfg);
            let mut cells = Vec::new();
            let mut prev = (0u64, 0u64); // (instr, cycle)
            for w in &r.stats.windows {
                let di = w.instructions - prev.0;
                let dc = w.cycle - prev.1;
                prev = (w.instructions, w.cycle);
                cells.push(format!("{:.3}", di as f64 / dc.max(1) as f64));
            }
            if matches!(scheme, Scheme::Dynamic { .. }) {
                dynamic_info = Some((r.transitions.clone(), r.stats.cycles));
            }
            rows.push((scheme.label(), cells));
        }
        let window_labels: Vec<String> = (1..=windows).map(|i| format!("w{i}")).collect();
        let columns: Vec<&str> = window_labels.iter().map(|s| s.as_str()).collect();
        print_table(
            &format!("Figure 7: {} IPC per window", bench.full_name()),
            &columns,
            &rows,
        );
        if let Some((transitions, total_cycles)) = dynamic_info {
            print!("dynamic_R4_E2 epoch transitions (cycle fraction -> new rate): ");
            for t in &transitions {
                print!(
                    "e{}@{:.2}->{} ",
                    t.epoch + 1,
                    t.at as f64 / total_cycles.max(1) as f64,
                    t.new_rate
                );
            }
            println!();
        }
    }

    println!(
        "\npaper shape: libquantum — dynamic hugs base_oram (≈8% below); gobmk — \
         erratic IPC but a consistent rate choice after epoch e6 (≈static_1300 \
         behaviour); h264ref — IPC collapses under static/dynamic when the \
         memory-bound phase starts (e8), then the dynamic scheme recovers by \
         switching to a faster rate at the next transition."
    );
}
