//! **Multi-tenant scaling** (beyond the paper): the `otc-host` serving
//! layer under a growing tenant fleet. The paper evaluates one session on
//! one ORAM; this experiment asks the production question — how do
//! per-tenant throughput, waste and dummy overhead evolve as K tenants
//! with the paper's dynamic_R4_E4 policy share a sharded backend, and
//! does the fleet's leakage ledger stay within the sum of per-tenant
//! bounds?
//!
//! Expected shape: fleet throughput grows with K while shard utilization
//! and queueing climb toward the admission ceiling; every tenant's
//! revealed bits stay ≤ its 32-bit budget regardless of K.
//!
//! The second sweep repeats the scaling question with **closed-loop**
//! tenant frontends: each tenant runs the full stepped core and feels
//! actual shard service + queueing cycles, so the per-tenant queueing
//! column (cycles a tenant's accesses waited behind busy shards, fed
//! back into its clock) grows with K — the heavy-traffic signal the
//! open-loop sweep's fixed miss stall cannot show.
//!
//! A **pipeline sweep** compares the shard service disciplines at each
//! K: `Serial` (one opaque OLAT per access, the pre-pipeline reference)
//! against `Staged` (posmap levels of access *i+1* overlap the
//! data-path/eviction of access *i*; evictions defer into a bounded
//! background queue). Expected shape: identical leakage accounting in
//! both columns, with mean per-access service time and queueing
//! dropping well past the CI perf gate's 15% floor as K saturates the
//! shards — the closed-loop saturation result `BENCH_pipeline.json`
//! records.
//!
//! Two churn-era sweeps follow:
//!
//! * **K-scaling (scheduler cost)** — K=8..256 tenants whose rates are
//!   scaled so the fleet's total due-slot rate is constant; per-round
//!   wall time is measured for the calendar-queue scheduler against the
//!   reference k-way merge. Expected shape: the calendar column stays
//!   flat in K (a round is O(slots due)); the merge column grows
//!   linearly (each served slot scans all K tenants).
//! * **Online churn** — one fleet driven through admissions, evictions,
//!   and shard resizes mid-run, reporting per-phase fleet state and the
//!   conservation checks (ledger sums over all rows, shard access
//!   totals including retired shards).

use otc_bench::{instruction_budget, print_table};
use otc_core::RatePolicy;
use otc_dram::Cycle;
use otc_host::{
    CapacityKind, HostConfig, HostError, LoopMode, MultiTenantHost, PipelineConfig, PipelineKind,
    TenantSpec,
};
use otc_workloads::SpecBenchmark;
use std::time::Instant;

fn main() {
    let slots_per_tenant = instruction_budget(20_000); // OTC_BENCH_INSTRUCTIONS overrides
    let shards = 4usize;
    let max_k = 6usize;
    println!(
        "Multi-tenant scaling: K=1..={max_k} tenants, {shards} shards, dynamic_R4_E4, \
         {slots_per_tenant} slots/tenant (set OTC_BENCH_INSTRUCTIONS to rescale)"
    );
    sweep(LoopMode::Open, slots_per_tenant, shards, max_k);
    sweep(LoopMode::Closed, slots_per_tenant, shards, max_k);
    pipeline_sweep(slots_per_tenant);
    admission_sweep(slots_per_tenant);
    scheduler_cost_sweep();
    churn_sweep(slots_per_tenant);
}

/// Admission sweep: fill identical shard pools to their admission
/// ceilings under the capacity pricings and serve each admitted fleet
/// closed-loop. `serial/olat` is the pre-cadence reference;
/// `staged/olat` shows a staged pool *under-admitting* when slots are
/// still priced at a full OLAT (same tenant count as serial, idle
/// bandwidth); `staged/cadence` is the payoff: ≥1.5× the tenants at
/// the same p99 service-time SLO (the property `BENCH_admission.json`
/// records and CI gates).
fn admission_sweep(slots_per_tenant: u64) {
    println!(
        "\nAdmission pricing: tenants admitted at saturation, serial vs staged shards \
         priced at OLAT vs pipeline cadence (closed loop, 2 shards, static rate 600)"
    );
    let mut rows = Vec::new();
    for (label, pipeline, capacity) in [
        ("serial/olat", PipelineConfig::serial(), CapacityKind::Olat),
        ("staged/olat", PipelineConfig::staged(), CapacityKind::Olat),
        (
            "staged/cadence",
            PipelineConfig::staged(),
            CapacityKind::Cadence,
        ),
    ] {
        let cfg = HostConfig {
            n_shards: 2,
            pipeline,
            capacity,
            ..HostConfig::default()
        };
        let mut host = MultiTenantHost::new(cfg).expect("builds");
        let benches = SpecBenchmark::tenant_mix(8);
        let mut admitted = 0usize;
        loop {
            let outcome = host.admit(
                &TenantSpec {
                    name: format!("t{admitted}"),
                    benchmark: benches[admitted % benches.len()],
                    policy: RatePolicy::Static { rate: 600 },
                    instructions: slots_per_tenant.saturating_mul(50),
                },
                LoopMode::Closed,
            );
            match outcome {
                Ok(_) => admitted += 1,
                Err(HostError::Saturated { .. }) => break,
                Err(e) => {
                    eprintln!("admission failed: {e}");
                    return;
                }
            }
        }
        let report = host.run_until_slots(slots_per_tenant);
        let fleet_tp: f64 = report
            .tenants
            .iter()
            .map(|t| t.throughput_per_mcycle)
            .sum::<f64>();
        rows.push((
            label.to_string(),
            vec![
                format!("{admitted}"),
                format!("{}", report.effective_cadence),
                format!("{:.2}/{:.2}", report.fleet_demand, report.fleet_capacity),
                format!("{}", report.p99_service_cycles),
                format!("{:.0}", report.mean_service_cycles),
                format!("{fleet_tp:.0}"),
            ],
        ));
        assert_eq!(report.pipeline, pipeline.kind);
        if pipeline.kind == PipelineKind::Serial || capacity == CapacityKind::Olat {
            // Olat pricing admits the same count whatever the pipeline
            // (the whole point of the refactor: that head-room was
            // always there, unpriced).
            assert_eq!(admitted, rows[0].1[0].parse::<usize>().unwrap());
        }
    }
    print_table(
        "Tenants admitted per capacity pricing (same shards, same SLO)",
        &[
            "admitted",
            "cadence cyc",
            "demand/cap",
            "p99 svc cyc",
            "mean svc cyc",
            "fleet acc/Mc",
        ],
        &rows,
    );
    println!(
        "(expected: staged/cadence admits ≥1.5× the serial/olat fleet — the ratio the \
         CI admission gate enforces from BENCH_admission.json — while p99 stays within \
         the same SLO; staged/olat shows the pipeline's bandwidth going unused when \
         slots are still priced at a full OLAT)"
    );
}

/// Pipeline sweep: the same closed-loop fleet under `Serial` vs `Staged`
/// shard service, K rising toward the admission ceiling. The staged
/// columns show the tentpole result: mean per-access service time and
/// queueing drop while throughput holds or improves, and the leakage
/// sums are identical (the pipeline moves backend work, never slots).
fn pipeline_sweep(slots_per_tenant: u64) {
    println!(
        "\nShard pipeline: serial (opaque OLAT) vs staged (overlapped posmap/data \
         stages, background eviction), closed loop, 2 shards"
    );
    let mut rows = Vec::new();
    for k in [2usize, 3, 4] {
        let run = |pipeline: PipelineConfig| -> Option<otc_host::HostReport> {
            let cfg = HostConfig {
                n_shards: 2,
                pipeline,
                ..HostConfig::default()
            };
            let mut host = MultiTenantHost::new(cfg).ok()?;
            for (i, bench) in SpecBenchmark::tenant_mix(k).into_iter().enumerate() {
                host.add_tenant_with_mode(
                    &TenantSpec {
                        name: format!("t{i}"),
                        benchmark: bench,
                        // 1488-cycle OLAT + rate 2000 ≈ 0.43 shards of
                        // worst-case demand per tenant: K=4 packs the
                        // 2-shard pool to ~94% of its admission cap.
                        policy: RatePolicy::Static { rate: 2_000 },
                        instructions: slots_per_tenant.saturating_mul(50),
                    },
                    LoopMode::Closed,
                )
                .ok()?;
            }
            Some(host.run_until_slots(slots_per_tenant))
        };
        let (Some(serial), Some(staged)) =
            (run(PipelineConfig::serial()), run(PipelineConfig::staged()))
        else {
            rows.push((format!("K={k}"), vec!["saturated".into()]));
            continue;
        };
        let improvement = (1.0 - staged.mean_service_cycles / serial.mean_service_cycles) * 100.0;
        rows.push((
            format!("K={k}"),
            vec![
                format!("{:.0}", serial.mean_service_cycles),
                format!("{:.0}", staged.mean_service_cycles),
                format!("{improvement:.1}%"),
                format!("{}", serial.shard_queueing_cycles),
                format!("{}", staged.shard_queueing_cycles),
                format!("{}", staged.background_eviction_drains),
            ],
        ));
    }
    print_table(
        "Per-access service time, serial vs staged pipeline",
        &[
            "serial svc cyc",
            "staged svc cyc",
            "improvement",
            "serial queue",
            "staged queue",
            "bg drains",
        ],
        &rows,
    );
    println!(
        "(expected: improvement well past the CI gate's 15% floor once K saturates \
         the shards — the staged cadence is the bottleneck stage, not the full OLAT)"
    );
}

/// K-scaling sweep: per-round *scheduler* cost, calendar queue vs k-way
/// merge, over the exact scheduling structures the host runs — but with
/// the ORAM backend out of the loop, because a backend access costs ~1µs
/// and would bury the term being measured. K synthetic slot grids are
/// driven with rates scaled by K so the aggregate due-slot rate (work
/// per round) is constant at every K; any growth in a column is pure
/// scheduler overhead.
fn scheduler_cost_sweep() {
    const ROUNDS: u64 = 512;
    const QUANTUM: Cycle = 1 << 16;
    println!(
        "\nScheduler cost: K slot grids at rate 2000·K (constant aggregate due-slot \
         rate), {ROUNDS} timed rounds/quantum {QUANTUM}, backend excluded"
    );
    let mut rows = Vec::new();
    for k in [8usize, 16, 32, 64, 128, 256] {
        let period: Cycle = 2_000 * k as u64 + 1_488; // rate + paper OLAT
                                                      // The host's calendar path: pop due, serve, reinsert one period on.
        let run_calendar = || -> (f64, u64, u64) {
            let mut q = otc_host::CalendarQueue::new(1 << 12, 256);
            for i in 0..k {
                q.insert(i, (i as u64 + 1) * 977 % period);
            }
            let mut served = 0u64;
            let mut checksum = 0u64;
            let mut rot = 0usize;
            let start = Instant::now();
            for round in 0..ROUNDS {
                let frontier = (round + 1) * QUANTUM;
                while let Some((idx, slot)) = q.pop_due(frontier, |key| (key + k - rot) % k) {
                    q.insert(idx, slot + period);
                    served += 1;
                    checksum = checksum
                        .wrapping_mul(0x100_0000_01B3)
                        .wrapping_add(slot ^ idx as u64);
                }
                rot = (rot + 1) % k;
            }
            (
                start.elapsed().as_secs_f64() * 1e6 / ROUNDS as f64,
                served,
                checksum,
            )
        };
        // The pre-churn host path: linear k-way merge, O(K) per served slot.
        let run_merge = || -> (f64, u64, u64) {
            let mut next: Vec<Cycle> = (0..k).map(|i| (i as u64 + 1) * 977 % period).collect();
            let mut served = 0u64;
            let mut checksum = 0u64;
            let mut rot = 0usize;
            let start = Instant::now();
            for round in 0..ROUNDS {
                let frontier = (round + 1) * QUANTUM;
                loop {
                    let mut pick: Option<(usize, Cycle)> = None;
                    for j in 0..k {
                        let idx = (rot + j) % k;
                        let s = next[idx];
                        if s < frontier && pick.is_none_or(|(_, best)| s < best) {
                            pick = Some((idx, s));
                        }
                    }
                    let Some((idx, slot)) = pick else { break };
                    next[idx] = slot + period;
                    served += 1;
                    checksum = checksum
                        .wrapping_mul(0x100_0000_01B3)
                        .wrapping_add(slot ^ idx as u64);
                }
                rot = (rot + 1) % k;
            }
            (
                start.elapsed().as_secs_f64() * 1e6 / ROUNDS as f64,
                served,
                checksum,
            )
        };
        let (cal_us, cal_served, cal_sum) = run_calendar();
        let (mrg_us, mrg_served, mrg_sum) = run_merge();
        assert_eq!(cal_served, mrg_served, "schedulers served different work");
        assert_eq!(cal_sum, mrg_sum, "schedulers served different slot orders");
        rows.push((
            format!("K={k}"),
            vec![
                format!("{:.1}", cal_served as f64 / ROUNDS as f64),
                format!("{cal_us:.2}"),
                format!("{mrg_us:.2}"),
                format!("{:.1}x", mrg_us / cal_us.max(1e-9)),
            ],
        ));
    }
    print_table(
        "Per-round scheduler cost, calendar queue vs k-way merge",
        &[
            "slots/round",
            "calendar us/round",
            "merge us/round",
            "merge/calendar",
        ],
        &rows,
    );
    println!(
        "(expected: calendar column flat in K, merge column ~linear — the O(K) \
         per-slot scan is exactly what the calendar queue removes)"
    );
}

/// Online churn sweep: one fleet, phases separated by churn events.
fn churn_sweep(slots_per_tenant: u64) {
    println!("\nOnline churn: admissions, evictions and shard resizes mid-run");
    let cfg = HostConfig {
        n_shards: 4,
        ..HostConfig::default()
    };
    let mut host = MultiTenantHost::new(cfg).expect("builds");
    let admit = |host: &mut MultiTenantHost, i: usize, mode: LoopMode, policy: RatePolicy| {
        let benches = SpecBenchmark::tenant_mix(8);
        host.admit(
            &TenantSpec {
                name: format!("t{i}"),
                benchmark: benches[i % benches.len()],
                policy,
                instructions: slots_per_tenant.saturating_mul(50),
            },
            mode,
        )
        .expect("admit")
    };
    // Three dynamic tenants fit 4 shards with room for two static
    // late-comers (dynamic_R4 worst-case utilization is ~0.85 each).
    for i in 0..3 {
        admit(
            &mut host,
            i,
            LoopMode::Open,
            RatePolicy::dynamic_paper(4, 4),
        );
    }
    let mut rows = Vec::new();
    let mut phase = |host: &mut MultiTenantHost, label: &str, rounds: u64| {
        for _ in 0..rounds {
            host.step_round();
        }
        let report = host.report();
        // Active rows only: frozen eviction rows would keep their
        // lifetime rates in the fleet column forever, hiding the very
        // drop the eviction phases exist to show.
        let fleet_tp: f64 = report
            .tenants
            .iter()
            .filter(|t| t.is_active())
            .map(|t| t.throughput_per_mcycle)
            .sum::<f64>()
            .max(0.0);
        let slots: u64 = report.tenants.iter().map(|t| t.slots_served).sum();
        let shard_total: u64 =
            report.shard_accesses.iter().sum::<u64>() + report.retired_shard_accesses;
        rows.push((
            label.to_string(),
            vec![
                format!("{}", report.active_tenants()),
                format!("{}", report.shard_accesses.len()),
                format!("{fleet_tp:.0}"),
                format!(
                    "{:.0}/{:.0}",
                    report.fleet_spent_bits, report.fleet_budget_bits
                ),
                if slots == shard_total && report.all_within_budget() {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ],
        ));
    };
    phase(&mut host, "steady K=3", 24);
    let evict_me = admit(
        &mut host,
        3,
        LoopMode::Closed,
        RatePolicy::Static { rate: 2_000 },
    );
    admit(
        &mut host,
        4,
        LoopMode::Open,
        RatePolicy::Static { rate: 3_000 },
    );
    phase(&mut host, "admit 2 (one closed)", 24);
    host.evict(evict_me).expect("evict");
    host.evict(0).expect("evict");
    phase(&mut host, "evict 2", 24);
    host.resize_shards(8).expect("grow");
    phase(&mut host, "grow shards 4->8", 24);
    admit(
        &mut host,
        5,
        LoopMode::Open,
        RatePolicy::dynamic_paper(4, 4),
    );
    phase(&mut host, "re-admit", 24);
    print_table(
        "Churn phases (fleet state after each phase)",
        &["active", "shards", "fleet acc/Mc", "leak bits", "conserved"],
        &rows,
    );
}

fn sweep(mode: LoopMode, slots_per_tenant: u64, shards: usize, max_k: usize) {
    let mut rows = Vec::new();
    for k in 1..=max_k {
        let cfg = HostConfig {
            n_shards: shards,
            ..HostConfig::default()
        };
        let mut host = match MultiTenantHost::new(cfg) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("host build failed: {e}");
                return;
            }
        };
        let mut admitted = true;
        for (i, bench) in SpecBenchmark::tenant_mix(k).into_iter().enumerate() {
            let result = host.add_tenant_with_mode(
                &TenantSpec {
                    name: format!("t{i}"),
                    benchmark: bench,
                    policy: RatePolicy::dynamic_paper(4, 4),
                    instructions: slots_per_tenant.saturating_mul(50),
                },
                mode,
            );
            match result {
                Ok(_) => {}
                Err(HostError::Saturated {
                    demanded,
                    available,
                    ..
                }) => {
                    rows.push((
                        format!("K={k}"),
                        vec![format!(
                            "saturated ({demanded:.2} > {available:.2} shard-equivalents)"
                        )],
                    ));
                    admitted = false;
                    break;
                }
                Err(e) => {
                    eprintln!("admission failed: {e}");
                    return;
                }
            }
        }
        if !admitted {
            continue;
        }
        let report = host.run_until_slots(slots_per_tenant);
        let fleet_tp: f64 = report.tenants.iter().map(|t| t.throughput_per_mcycle).sum();
        let mean_dummy: f64 =
            report.tenants.iter().map(|t| t.dummy_fraction).sum::<f64>() / k as f64;
        let mean_waste: f64 =
            report.tenants.iter().map(|t| t.waste_per_real).sum::<f64>() / k as f64;
        let max_util = report
            .shard_utilization
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        let mean_queue: f64 = report
            .tenants
            .iter()
            .map(|t| t.queueing_cycles)
            .sum::<u64>() as f64
            / k as f64;
        rows.push((
            format!("K={k}"),
            vec![
                format!("{fleet_tp:.0}"),
                format!("{:.1}", mean_dummy * 100.0),
                format!("{mean_waste:.0}"),
                format!("{:.0}", max_util * 100.0),
                format!("{mean_queue:.0}"),
                format!(
                    "{:.0}/{:.0}",
                    report.fleet_spent_bits, report.fleet_budget_bits
                ),
                if report.all_within_budget() {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ],
        ));
    }

    let title = match mode {
        LoopMode::Open => "Multi-tenant scaling, open loop (dynamic_R4_E4 per tenant)",
        LoopMode::Closed => "Multi-tenant scaling, closed loop (dynamic_R4_E4 per tenant)",
    };
    print_table(
        title,
        &[
            "fleet acc/Mc",
            "dummy %",
            "waste/real",
            "max util %",
            "queue cyc/tenant",
            "leak bits",
            "within budget",
        ],
        &rows,
    );
}
