//! **Multi-tenant scaling** (beyond the paper): the `otc-host` serving
//! layer under a growing tenant fleet. The paper evaluates one session on
//! one ORAM; this experiment asks the production question — how do
//! per-tenant throughput, waste and dummy overhead evolve as K tenants
//! with the paper's dynamic_R4_E4 policy share a sharded backend, and
//! does the fleet's leakage ledger stay within the sum of per-tenant
//! bounds?
//!
//! Expected shape: fleet throughput grows with K while shard utilization
//! and queueing climb toward the admission ceiling; every tenant's
//! revealed bits stay ≤ its 32-bit budget regardless of K.
//!
//! The second sweep repeats the scaling question with **closed-loop**
//! tenant frontends: each tenant runs the full stepped core and feels
//! actual shard service + queueing cycles, so the per-tenant queueing
//! column (cycles a tenant's accesses waited behind busy shards, fed
//! back into its clock) grows with K — the heavy-traffic signal the
//! open-loop sweep's fixed miss stall cannot show.

use otc_bench::{instruction_budget, print_table};
use otc_core::RatePolicy;
use otc_host::{HostConfig, HostError, LoopMode, MultiTenantHost, TenantSpec};
use otc_workloads::SpecBenchmark;

fn main() {
    let slots_per_tenant = instruction_budget(20_000); // OTC_BENCH_INSTRUCTIONS overrides
    let shards = 4usize;
    let max_k = 6usize;
    println!(
        "Multi-tenant scaling: K=1..={max_k} tenants, {shards} shards, dynamic_R4_E4, \
         {slots_per_tenant} slots/tenant (set OTC_BENCH_INSTRUCTIONS to rescale)"
    );
    sweep(LoopMode::Open, slots_per_tenant, shards, max_k);
    sweep(LoopMode::Closed, slots_per_tenant, shards, max_k);
}

fn sweep(mode: LoopMode, slots_per_tenant: u64, shards: usize, max_k: usize) {
    let mut rows = Vec::new();
    for k in 1..=max_k {
        let cfg = HostConfig {
            n_shards: shards,
            ..HostConfig::default()
        };
        let mut host = match MultiTenantHost::new(cfg) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("host build failed: {e}");
                return;
            }
        };
        let mut admitted = true;
        for (i, bench) in SpecBenchmark::tenant_mix(k).into_iter().enumerate() {
            let result = host.add_tenant_with_mode(
                &TenantSpec {
                    name: format!("t{i}"),
                    benchmark: bench,
                    policy: RatePolicy::dynamic_paper(4, 4),
                    instructions: slots_per_tenant.saturating_mul(50),
                },
                mode,
            );
            match result {
                Ok(_) => {}
                Err(HostError::Saturated {
                    demanded,
                    available,
                }) => {
                    rows.push((
                        format!("K={k}"),
                        vec![format!(
                            "saturated ({demanded:.2} > {available:.2} shard-equivalents)"
                        )],
                    ));
                    admitted = false;
                    break;
                }
                Err(e) => {
                    eprintln!("admission failed: {e}");
                    return;
                }
            }
        }
        if !admitted {
            continue;
        }
        let report = host.run_until_slots(slots_per_tenant);
        let fleet_tp: f64 = report.tenants.iter().map(|t| t.throughput_per_mcycle).sum();
        let mean_dummy: f64 =
            report.tenants.iter().map(|t| t.dummy_fraction).sum::<f64>() / k as f64;
        let mean_waste: f64 =
            report.tenants.iter().map(|t| t.waste_per_real).sum::<f64>() / k as f64;
        let max_util = report
            .shard_utilization
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        let mean_queue: f64 = report
            .tenants
            .iter()
            .map(|t| t.queueing_cycles)
            .sum::<u64>() as f64
            / k as f64;
        rows.push((
            format!("K={k}"),
            vec![
                format!("{fleet_tp:.0}"),
                format!("{:.1}", mean_dummy * 100.0),
                format!("{mean_waste:.0}"),
                format!("{:.0}", max_util * 100.0),
                format!("{mean_queue:.0}"),
                format!(
                    "{:.0}/{:.0}",
                    report.fleet_spent_bits, report.fleet_budget_bits
                ),
                if report.all_within_budget() {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ],
        ));
    }

    let title = match mode {
        LoopMode::Open => "Multi-tenant scaling, open loop (dynamic_R4_E4 per tenant)",
        LoopMode::Closed => "Multi-tenant scaling, closed loop (dynamic_R4_E4 per tenant)",
    };
    print_table(
        title,
        &[
            "fleet acc/Mc",
            "dummy %",
            "waste/real",
            "max util %",
            "queue cyc/tenant",
            "leak bits",
            "within budget",
        ],
        &rows,
    );
}
