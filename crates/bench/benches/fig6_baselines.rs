//! **Figure 6 + §9.3**: the paper's headline result. Performance overhead
//! (× vs `base_dram`) and power (Watts, chip + memory breakdown) for
//! `base_oram`, `dynamic_R4_E4`, `static_300`, `static_500` and
//! `static_1300` across the 11-benchmark lineup, plus the derived §9.3
//! claim rows (dynamic-vs-oracle gap, static break-even costs, dummy
//! fraction).

use otc_bench::{geomean, instruction_budget, mean, print_table, run_pair, RunConfig, RunResult};
use otc_core::Scheme;
use otc_workloads::SpecBenchmark;

fn main() {
    let cfg = RunConfig {
        instructions: instruction_budget(2_000_000),
        ..Default::default()
    };
    let benches = SpecBenchmark::figure6_lineup();
    let schemes = Scheme::figure6_lineup();

    println!(
        "Figure 6 reproduction: {} instructions per run (set OTC_BENCH_INSTRUCTIONS to scale)",
        cfg.instructions
    );

    // Run everything (plus the base_dram normalizer).
    let mut perf_rows = Vec::new();
    let mut power_rows = Vec::new();
    let mut per_scheme_perf: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    let mut per_scheme_power: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    let mut per_scheme_dummy: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];

    for bench in &benches {
        let base = run_pair(*bench, &Scheme::BaseDram, &cfg);
        let mut perf_cells = Vec::new();
        let mut power_cells = Vec::new();
        for (si, scheme) in schemes.iter().enumerate() {
            let r: RunResult = run_pair(*bench, scheme, &cfg);
            let overhead = otc_bench::perf_overhead(&r, &base);
            per_scheme_perf[si].push(overhead);
            per_scheme_power[si].push(r.power.total_watts());
            per_scheme_dummy[si].push(r.dummy_fraction);
            perf_cells.push(format!("{overhead:.2}"));
            power_cells.push(format!("{:.3}", r.power.total_watts()));
        }
        perf_rows.push((bench.short_name().to_string(), perf_cells));
        power_rows.push((bench.short_name().to_string(), power_cells));
    }

    let labels: Vec<String> = schemes.iter().map(|s| s.label()).collect();
    let columns: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();

    perf_rows.push((
        "Avg".into(),
        per_scheme_perf
            .iter()
            .map(|v| format!("{:.2}", geomean(v)))
            .collect(),
    ));
    print_table(
        "Figure 6 (top): performance overhead, x vs base_dram",
        &columns,
        &perf_rows,
    );
    println!(
        "paper Avg: base_oram 3.35x | dynamic_R4_E4 4.03x | static_300 3.80x \
         (static_500/static_1300 bracket the dynamic point)"
    );

    power_rows.push((
        "Avg".into(),
        per_scheme_power
            .iter()
            .map(|v| format!("{:.3}", mean(v)))
            .collect(),
    ));
    print_table("Figure 6 (bottom): power, Watts", &columns, &power_rows);
    println!(
        "paper Avg power ratios vs base_dram: base_oram 5.27x | dynamic_R4_E4 5.89x | static_300 8.68x"
    );

    // §9.3 derived claims.
    let perf = |label: &str| {
        let i = labels
            .iter()
            .position(|l| l == label)
            .expect("scheme present");
        geomean(&per_scheme_perf[i])
    };
    let power = |label: &str| {
        let i = labels
            .iter()
            .position(|l| l == label)
            .expect("scheme present");
        mean(&per_scheme_power[i])
    };
    let dynamic_vs_oracle_perf = (perf("dynamic_R4_E4") / perf("base_oram") - 1.0) * 100.0;
    let dynamic_vs_oracle_power = (power("dynamic_R4_E4") / power("base_oram") - 1.0) * 100.0;
    let static500_power = (power("static_500") / power("dynamic_R4_E4") - 1.0) * 100.0;
    let static1300_perf = (perf("static_1300") / perf("dynamic_R4_E4") - 1.0) * 100.0;
    let static300_power = (power("static_300") / power("dynamic_R4_E4") - 1.0) * 100.0;
    let dyn_idx = labels
        .iter()
        .position(|l| l == "dynamic_R4_E4")
        .expect("present");
    let dummy_avg = mean(&per_scheme_dummy[dyn_idx]) * 100.0;

    println!("\n== Section 9.3 derived claims (measured vs paper) ==");
    println!(
        "dynamic_R4_E4 vs base_oram:  perf +{dynamic_vs_oracle_perf:.0}% (paper +20%), \
         power +{dynamic_vs_oracle_power:.0}% (paper +12%)"
    );
    println!(
        "static_500  vs dynamic:      power +{static500_power:.0}% (paper +34%, perf break-even)"
    );
    println!(
        "static_1300 vs dynamic:      perf  +{static1300_perf:.0}% (paper +30%, power break-even)"
    );
    println!("static_300  vs dynamic:      power +{static300_power:.0}% (paper +47%)");
    println!(
        "dynamic dummy-access fraction: {dummy_avg:.0}% (paper: 34% average, footnote in §11)"
    );
    println!(
        "leakage: dynamic_R4_E4 <= {} bits over the ORAM timing channel (paper: 32)",
        Scheme::dynamic(4, 4).oram_timing_leakage_bits()
    );
}
