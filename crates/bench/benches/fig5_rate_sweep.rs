//! **Figure 5 / §9.2**: sweep static ORAM rates for a memory-bound (mcf)
//! and compute-bound (h264ref) benchmark; report performance and power
//! overhead vs `base_dram` at each rate. This is how the paper selects
//! the extremes of `R` (256 and 32768 cycles): rates oversetting mcf's
//! demand destroy its performance, and rates far beyond ~30000 cycles
//! push h264ref's power below `base_dram` (the processor mostly idles
//! waiting for ORAM).
//!
//! Scale notes: performance is measured over the *second half* of each
//! run so cache-warmup compulsory misses (which the paper's 200B-
//! instruction runs amortize away) don't mask the steady-state shape, and
//! h264ref is held in its compute-bound phase (its late memory-bound
//! phase belongs to Fig. 7's story, not Fig. 5's).

use otc_bench::{instruction_budget, print_table, RunConfig};
use otc_core::Scheme;
use otc_sim::WindowSample;
use otc_workloads::SpecBenchmark;

/// Cycles spent in the second half of the run (by instruction count).
fn second_half_cycles(windows: &[WindowSample]) -> u64 {
    let mid = windows.len() / 2;
    windows.last().map(|w| w.cycle).unwrap_or(0) - windows[mid].cycle
}

fn main() {
    let instructions = instruction_budget(1_000_000);
    let cfg = RunConfig {
        instructions,
        window_instructions: Some(instructions / 8),
        ..Default::default()
    };
    // Lg-spaced sweep 2^5..2^17, matching the figure's x-axis range.
    let rates: Vec<u64> = (5..=17).map(|p| 1u64 << p).collect();

    println!("Figure 5 reproduction: {instructions} instructions per run");

    for bench in [SpecBenchmark::Mcf, SpecBenchmark::H264ref] {
        // Keep h264ref inside its compute phase: build against a nominal
        // length 4x the budget (the phase split is a run fraction).
        let nominal = if bench == SpecBenchmark::H264ref {
            instructions * 4
        } else {
            instructions
        };
        let run = |scheme: &Scheme| {
            let mut wl = bench.spec(nominal).build();
            otc_bench::run_stream(&mut wl, scheme, &cfg)
        };
        let base = run(&Scheme::BaseDram);
        let base_steady = second_half_cycles(&base.stats.windows);
        let base_power = base.power.total_watts();
        let mut rows = Vec::new();
        for &rate in &rates {
            let r = run(&Scheme::Static { rate });
            let perf = second_half_cycles(&r.stats.windows) as f64 / base_steady.max(1) as f64;
            let power = r.power.total_watts() / base_power;
            rows.push((
                format!("rate={rate}"),
                vec![format!("{perf:.2}"), format!("{power:.2}")],
            ));
        }
        print_table(
            &format!(
                "Figure 5: {} static-rate sweep (steady-state overhead x vs base_dram)",
                bench.full_name()
            ),
            &["perf", "power"],
            &rows,
        );
    }

    println!(
        "\npaper shape: mcf's performance overhead grows steeply as the rate is \
         overset (slow rates starve a memory-bound program) while its power falls; \
         h264ref's performance is nearly flat (compute-bound) and its power crosses \
         below base_dram in the rate~10^4 decade. Hence R spans 256..32768 (§9.2)."
    );
}
