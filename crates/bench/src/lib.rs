//! Shared experiment harness for the per-figure/per-table bench targets.
//!
//! Each `benches/*.rs` target (run via `cargo bench`) regenerates one
//! table or figure from the paper's evaluation (§9), printing the
//! reproduction's rows next to the paper's reference numbers. This crate
//! holds the common machinery: building a (benchmark, scheme) pair,
//! running it on the cycle-level simulator, and extracting the metrics
//! the paper reports.
//!
//! Scale note (`DESIGN.md` §2): instruction budgets default to a few
//! million per run so `cargo bench --workspace` completes in minutes; set
//! `OTC_BENCH_INSTRUCTIONS` to raise them. Epoch schedules are the scaled
//! ones (first epoch 2^20 cycles, Tmax 2^52), which preserve the paper's
//! epoch counts and therefore its leakage bounds exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use otc_core::{EpochTransition, RateLimitedOramBackend, Scheme, UnprotectedOramBackend};
use otc_dram::DdrConfig;
use otc_oram::OramConfig;
use otc_power::{PowerModel, PowerReport};
use otc_sim::{DramBackend, SimConfig, SimStats, Simulator};
use otc_workloads::SpecBenchmark;

/// Instruction budget per run: `OTC_BENCH_INSTRUCTIONS` or the default.
pub fn instruction_budget(default: u64) -> u64 {
    std::env::var("OTC_BENCH_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One (benchmark, scheme) experiment configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Instructions to retire.
    pub instructions: u64,
    /// Record a window sample every this many instructions (None = off).
    pub window_instructions: Option<u64>,
    /// LLC capacity in bytes (paper default 1 MB).
    pub llc_bytes: u64,
    /// ORAM geometry (paper default).
    pub oram: OramConfig,
    /// Whether the backend should record its observable trace (memory-
    /// hungry on long runs; off for sweeps).
    pub record_trace: bool,
    /// Fast-forward instructions before measurement (the paper
    /// fast-forwards 1-20B instructions to get out of initialization,
    /// §9.1.1; this is the scaled equivalent and runs over flat DRAM).
    pub warmup_instructions: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            instructions: 2_000_000,
            window_instructions: None,
            llc_bytes: 1 << 20,
            oram: OramConfig::paper(),
            record_trace: false,
            warmup_instructions: 1_000_000,
        }
    }
}

/// The measurements one run produces.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Scheme label (`base_dram`, `dynamic_R4_E4`, …).
    pub scheme: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Raw simulator statistics.
    pub stats: SimStats,
    /// Power breakdown per the Table 2 model.
    pub power: PowerReport,
    /// Fraction of ORAM slots that were dummy accesses (0 for
    /// `base_dram`/`base_oram`).
    pub dummy_fraction: f64,
    /// Epoch transitions (dynamic schemes only).
    pub transitions: Vec<EpochTransition>,
}

impl RunResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

/// Runs one benchmark under one scheme.
pub fn run_pair(bench: SpecBenchmark, scheme: &Scheme, cfg: &RunConfig) -> RunResult {
    let mut workload = bench.workload(cfg.instructions);
    run_stream(&mut workload, scheme, cfg)
}

/// Runs an arbitrary instruction stream under one scheme (used for the
/// malicious-program experiments, which are not SPEC-shaped).
pub fn run_stream<S>(workload: &mut S, scheme: &Scheme, cfg: &RunConfig) -> RunResult
where
    S: otc_sim::InstructionStream + ?Sized,
{
    let mut sim_cfg = SimConfig::default().with_llc_capacity(cfg.llc_bytes);
    sim_cfg.window_instructions = cfg.window_instructions;
    let sim = Simulator::new(sim_cfg);
    let ddr = DdrConfig::default();

    let timing = otc_oram::OramTiming::derive(&cfg.oram, &ddr);
    let power_model =
        PowerModel::paper().with_oram_access(timing.chunks_per_access(), timing.dram_cycles);

    let benchmark = workload.name().to_string();
    let warm = sim.warm_caches(workload, cfg.warmup_instructions);
    let (stats, dummy_fraction, transitions) = match scheme {
        Scheme::BaseDram => {
            let mut backend = DramBackend::new();
            let stats = sim.run_warm(workload, &mut backend, cfg.instructions, warm);
            (stats, 0.0, Vec::new())
        }
        Scheme::BaseOram => {
            let mut backend =
                UnprotectedOramBackend::new(cfg.oram.clone(), &ddr).expect("valid ORAM config");
            backend.set_trace_recording(cfg.record_trace);
            let stats = sim.run_warm(workload, &mut backend, cfg.instructions, warm);
            (stats, 0.0, Vec::new())
        }
        Scheme::Static { rate } => {
            let mut backend = RateLimitedOramBackend::new(
                cfg.oram.clone(),
                &ddr,
                otc_core::RatePolicy::Static { rate: *rate },
            )
            .expect("valid ORAM config");
            backend.set_trace_recording(cfg.record_trace);
            let stats = sim.run_warm(workload, &mut backend, cfg.instructions, warm);
            (stats, backend.dummy_fraction(), Vec::new())
        }
        Scheme::Dynamic {
            rate_count,
            schedule,
            ..
        } => {
            let mut backend = RateLimitedOramBackend::new(
                cfg.oram.clone(),
                &ddr,
                otc_core::RatePolicy::Dynamic {
                    rates: otc_core::RateSet::paper(*rate_count),
                    schedule: *schedule,
                    divider: otc_core::DividerImpl::ShiftRegister,
                    initial_rate: 10_000,
                },
            )
            .expect("valid ORAM config");
            backend.set_trace_recording(cfg.record_trace);
            let stats = sim.run_warm(workload, &mut backend, cfg.instructions, warm);
            (
                stats,
                backend.dummy_fraction(),
                backend.transitions().to_vec(),
            )
        }
    };

    let power = power_model.power(&stats);
    RunResult {
        scheme: scheme.label(),
        benchmark,
        stats,
        power,
        dummy_fraction,
        transitions,
    }
}

/// Performance overhead of `run` relative to a `base` run of the same
/// benchmark: cycles ratio (same instruction count on both sides).
pub fn perf_overhead(run: &RunResult, base: &RunResult) -> f64 {
    run.stats.cycles as f64 / base.stats.cycles.max(1) as f64
}

/// Pretty-prints a table: header row + rows of (label, values).
pub fn print_table(title: &str, columns: &[&str], rows: &[(String, Vec<String>)]) {
    println!("\n== {title} ==");
    print!("{:<18}", "");
    for c in columns {
        print!("{c:>15}");
    }
    println!();
    for (label, values) in rows {
        print!("{label:<18}");
        for v in values {
            print!("{v:>15}");
        }
        println!();
    }
}

/// Geometric mean (the right average for overhead ratios).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn run_pair_smoke_base_dram_vs_base_oram() {
        let cfg = RunConfig {
            instructions: 40_000,
            ..Default::default()
        };
        let dram = run_pair(SpecBenchmark::Mcf, &Scheme::BaseDram, &cfg);
        let oram = run_pair(SpecBenchmark::Mcf, &Scheme::BaseOram, &cfg);
        assert_eq!(dram.stats.instructions, 40_000);
        assert_eq!(oram.stats.instructions, 40_000);
        // ORAM with no protection is far slower than DRAM on mcf.
        let overhead = perf_overhead(&oram, &dram);
        assert!(overhead > 2.0, "overhead {overhead}");
        // And burns far more memory power.
        assert!(oram.power.memory_watts > dram.power.memory_watts * 10.0);
    }

    #[test]
    fn dynamic_scheme_reports_dummies() {
        // A pure-compute loop (no memory traffic at all): every enforced
        // slot is a dummy access.
        struct AluLoop(u32);
        impl otc_sim::InstructionStream for AluLoop {
            fn next_instr(&mut self) -> otc_sim::Instr {
                self.0 = (self.0 + 1) % 16;
                if self.0 == 0 {
                    otc_sim::Instr::Branch {
                        taken: true,
                        target: 0x1000,
                    }
                } else {
                    otc_sim::Instr::IntAlu
                }
            }
            fn name(&self) -> &str {
                "alu_loop"
            }
        }
        let cfg = RunConfig {
            instructions: 200_000,
            ..Default::default()
        };
        let dyn_run = run_stream(&mut AluLoop(0), &Scheme::dynamic(4, 2), &cfg);
        assert!(dyn_run.dummy_fraction > 0.9, "{}", dyn_run.dummy_fraction);
        assert_eq!(dyn_run.benchmark, "alu_loop");
    }

    #[test]
    fn instruction_budget_env_default() {
        // No env set in tests → default.
        assert_eq!(instruction_budget(123), 123);
    }
}
