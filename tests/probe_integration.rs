//! The §3.2 root-bucket probe against the *enforced* timeline: the
//! adversary can measure exactly when accesses happen — and under rate
//! enforcement, what it measures is the public slot grid, nothing more.

use oram_timing::prelude::*;
use otc_sim::AccessKind;

#[test]
fn probe_reads_the_slot_grid_through_dram() {
    let ddr = DdrConfig::default();
    let mut backend = RateLimitedOramBackend::new(
        OramConfig::small(),
        &ddr,
        RatePolicy::Static { rate: 2_000 },
    )
    .expect("valid");
    let olat = backend.olat();
    let period = 2_000 + olat;

    let mut probe = RootBucketProbe::new();
    probe.poll(backend.oram(), 0);

    // Issue one real request early on.
    backend.request(7, AccessKind::Read, 100);

    // Interleave: advance the timeline one slot period, then poll —
    // exactly the §3.2 adversary's read-the-root-between-accesses loop.
    for k in 1..=10u64 {
        let t = 2_000 + k * period + 10;
        backend.finish(t); // time passes; slots materialize
        let sample = probe.poll(backend.oram(), t);
        // One slot completes per period, so every poll sees the root
        // rewritten (by a real access or a dummy — it cannot tell which).
        assert!(
            sample.accessed_since_last,
            "slot {k} should have rewritten the root"
        );
    }
    // Busy fraction ≈ 1: ORAM accessed in every window — the probe
    // cannot tell which slots carried the real request.
    assert!(probe.busy_fraction() > 0.8);
}

#[test]
fn probe_sees_identical_pictures_for_different_request_loads() {
    // Two backends, same static policy, radically different demand: the
    // probe's periodic samples match exactly.
    let observe = |n_requests: u64| {
        let ddr = DdrConfig::default();
        let mut backend = RateLimitedOramBackend::new(
            OramConfig::small(),
            &ddr,
            RatePolicy::Static { rate: 1_500 },
        )
        .expect("valid");
        let mut now = 0;
        for i in 0..n_requests {
            now = backend.request(i, AccessKind::Read, now + 50);
        }
        backend.finish(200_000);
        // The adversary's view: per-slot "root changed" bits — derived
        // here from the slot trace (equivalent to polling between slots).
        backend
            .trace()
            .iter()
            .map(|s| s.start)
            .collect::<Vec<Cycle>>()
    };
    assert_eq!(observe(0), observe(40));
}
