//! Whole-stack determinism: identical configurations replay bit-for-bit.
//! This underpins every experiment's reproducibility and the §8.1
//! analysis (where *breaking* determinism is the attack surface).

use oram_timing::prelude::*;

fn full_run(seed_shift: u64) -> (Cycle, u64, Vec<(u32, Cycle, u64)>) {
    let mut spec = SpecBenchmark::Gobmk.spec(60_000);
    spec.seed ^= seed_shift;
    let mut wl = spec.build();
    let mut backend = RateLimitedOramBackend::new(
        OramConfig::paper(),
        &DdrConfig::default(),
        RatePolicy::Dynamic {
            rates: RateSet::paper(4),
            schedule: EpochSchedule::new(17, 2, 40),
            divider: DividerImpl::ShiftRegister,
            initial_rate: 10_000,
        },
    )
    .expect("valid");
    let stats = Simulator::new(SimConfig::default()).run(&mut wl, &mut backend, 60_000);
    let transitions = backend
        .transitions()
        .iter()
        .map(|t| (t.epoch, t.at, t.new_rate))
        .collect();
    (stats.cycles, backend.slots_served(), transitions)
}

#[test]
fn identical_runs_replay_exactly() {
    let a = full_run(0);
    let b = full_run(0);
    assert_eq!(a, b);
}

#[test]
fn different_inputs_may_differ() {
    let a = full_run(0);
    let b = full_run(0x5EED);
    // Different data → (almost surely) different cycle counts; the
    // *leakage-relevant* part (rate choices) may or may not differ, and
    // that is exactly what the |R|^|E| bound permits.
    assert_ne!(a.0, b.0);
}

#[test]
fn oram_replays_functionally() {
    let run = || {
        let mut oram = RecursivePathOram::new(OramConfig::small()).expect("valid");
        let mut sum = 0u64;
        for i in 0..200u64 {
            oram.write(i % 50, &[(i % 251) as u8; 64]);
            sum = sum.wrapping_add(oram.read((i * 7) % 50)[0] as u64);
        }
        (sum, oram.stats(), oram.root_fingerprint())
    };
    assert_eq!(run(), run());
}
