//! The full §5 user–server protocol exercised across crates: session
//! establishment, leakage-parameter vetting, computation on encrypted
//! data, result decryption, and §8 replay prevention — with the actual
//! crypto (simulation-grade) and leakage models, not mocks.

use oram_timing::attacks::session_fixture;
use oram_timing::prelude::*;

#[test]
fn complete_protocol_with_simulated_computation() {
    let mut rng = SplitMix64::new(2026);
    let mut processor = SecureProcessor::manufacture(&mut rng, 32);
    let user = UserSession::establish(&mut processor, &mut rng).expect("handshake");

    // The user's data: parameters for a (tiny) computation.
    let data: Vec<u8> = (0..64u8).collect();
    let encrypted = user.encrypt_data(&data);

    // Server proposes the paper's headline leakage parameters.
    let params = LeakageParams {
        rate_count: 4,
        schedule: EpochSchedule::scaled(4),
    };
    assert_eq!(params.oram_timing_bits(), 32.0);

    // "P(D)": sum of squares over the decrypted bytes, computed inside the
    // enclave boundary.
    let result = processor
        .run_program(&encrypted, &params, |d| {
            let s: u64 = d.iter().map(|&b| (b as u64) * (b as u64)).sum();
            s.to_le_bytes().to_vec()
        })
        .expect("within leakage budget");
    let plain = user.decrypt_result(&result);
    let expect: u64 = (0..64u64).map(|b| b * b).sum();
    assert_eq!(plain, expect.to_le_bytes().to_vec());
}

#[test]
fn server_cannot_exceed_the_users_leakage_limit() {
    let (mut processor, user, _) = session_fixture(7, 16, b"");
    let encrypted = user.encrypt_data(b"xyz");
    // R4/E4 would leak 32 bits — over the 16-bit limit.
    let params = LeakageParams {
        rate_count: 4,
        schedule: EpochSchedule::scaled(4),
    };
    assert!(processor
        .run_program(&encrypted, &params, |d| d.to_vec())
        .is_err());
    // R4/E16 leaks 16 bits — allowed.
    let ok_params = LeakageParams {
        rate_count: 4,
        schedule: EpochSchedule::scaled(16),
    };
    assert!(processor
        .run_program(&encrypted, &ok_params, |d| d.to_vec())
        .is_ok());
}

#[test]
fn replay_is_dead_after_session_end() {
    let (mut processor, user, _) = session_fixture(9, 64, b"");
    let encrypted = user.encrypt_data(b"user data");
    let params = LeakageParams {
        rate_count: 4,
        schedule: EpochSchedule::scaled(4),
    };
    processor
        .run_program(&encrypted, &params, |d| d.to_vec())
        .expect("first run");
    processor.end_session();
    assert!(processor
        .run_program(&encrypted, &params, |d| d.to_vec())
        .is_err());
}

#[test]
fn hmac_binding_pins_program_and_parameters() {
    let (mut processor, user, _) = session_fixture(11, 64, b"");
    let encrypted = user.encrypt_data(b"bound data");
    let params = LeakageParams {
        rate_count: 4,
        schedule: EpochSchedule::scaled(4),
    };
    let tag = user.bind(b"program-v1", &encrypted, &params);
    assert!(processor
        .run_bound_program(&encrypted, b"program-v1", &params, &tag, |d| d.to_vec())
        .is_ok());
    assert!(processor
        .run_bound_program(&encrypted, b"program-v2", &params, &tag, |d| d.to_vec())
        .is_err());
}
