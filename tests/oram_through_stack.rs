//! Functional ORAM correctness exercised through the backend layer, plus
//! paper-parameter sanity on the full recursive structure.

use oram_timing::prelude::*;
use otc_sim::AccessKind;

#[test]
fn backends_drive_the_real_oram() {
    // The rate-limited backend performs genuine Path ORAM accesses: its
    // ORAM's stats and fingerprints move with every slot.
    let mut backend = RateLimitedOramBackend::new(
        OramConfig::small(),
        &DdrConfig::default(),
        RatePolicy::Static { rate: 400 },
    )
    .expect("valid");
    let fp0 = backend.oram().root_fingerprint();
    let mut now = 0;
    for i in 0..20u64 {
        now = backend.request(i * 3, AccessKind::Read, now);
    }
    backend.finish(now + 50_000);
    let stats = backend.oram().stats();
    assert_eq!(stats.real_accesses, 20);
    assert!(stats.dummy_accesses > 0);
    assert_ne!(backend.oram().root_fingerprint(), fp0);
    backend.oram().check_invariants();
}

#[test]
fn paper_geometry_numbers_hold_in_integration() {
    let cfg = OramConfig::paper();
    let timing = OramTiming::derive(&cfg, &DdrConfig::default());
    assert_eq!(timing.latency, 1488);
    assert_eq!(timing.transfer.bytes, 24_256);
    assert_eq!(cfg.total_path_buckets(), 86);
    assert_eq!(cfg.capacity_bytes(), 4 << 30);
    // Stash stays bounded on the paper-sized tree under sustained access.
    let mut oram = RecursivePathOram::new(cfg).expect("valid");
    for i in 0..300u64 {
        oram.write(i * 1_000_003 % (1 << 26), &[i as u8; 64]);
    }
    assert!(oram.stash_peak() < 100, "stash peak {}", oram.stash_peak());
}

#[test]
fn write_buffer_generates_concurrent_oram_traffic() {
    // Store bursts from the 8-entry write buffer queue multiple ORAM
    // requests (Fig. 4 Req 3's scenario) — all are eventually served, in
    // order, on the slot grid.
    struct StoreBurst(u64);
    impl InstructionStream for StoreBurst {
        fn next_instr(&mut self) -> Instr {
            self.0 += 1;
            if self.0.is_multiple_of(16) {
                Instr::Branch {
                    taken: true,
                    target: 0x1000,
                }
            } else if self.0.is_multiple_of(4) {
                Instr::Store {
                    addr: 0x2000_0000 + self.0 * 64,
                }
            } else {
                Instr::IntAlu
            }
        }
    }
    let mut backend = RateLimitedOramBackend::new(
        OramConfig::paper(),
        &DdrConfig::default(),
        RatePolicy::Static { rate: 600 },
    )
    .expect("valid");
    let stats = Simulator::new(SimConfig::default()).run(&mut StoreBurst(0), &mut backend, 20_000);
    assert!(stats.stores > 3_000);
    assert!(backend.oram().stats().real_accesses > 100);
    // Slot grid intact despite bursty arrivals.
    let period = 600 + backend.olat();
    for (k, s) in backend.trace().iter().enumerate() {
        assert_eq!(s.start, 600 + k as u64 * period);
    }
}
