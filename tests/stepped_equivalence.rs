//! Stepped-vs-blocking equivalence: driving [`SteppedSim`] to completion
//! by hand, against the same backend, must reproduce the blocking
//! `Simulator::run` `SimResult` **field-for-field** — cycles, misses,
//! writebacks, stall breakdown, window samples, energy profile.
//!
//! `Simulator::run` is itself a thin driver over the stepped core, so
//! these tests pin the *protocol*: every piece of state a caller needs to
//! continue a run is carried by the event/resume API, for every
//! `SpecBenchmark` and for a seeded synthetic mix, over both the flat
//! DRAM backend and a queue-stateful rate-limited ORAM backend.

use otc_core::{RateLimitedOramBackend, RatePolicy};
use otc_dram::DdrConfig;
use otc_oram::OramConfig;
use otc_sim::instr::InstructionStream;
use otc_sim::{
    AccessKind, DramBackend, MemoryBackend, SimConfig, SimResult, Simulator, StepEvent, SteppedSim,
};
use otc_workloads::{
    AddressPattern, InstructionMix, PhaseSpec, SpecBenchmark, SyntheticWorkload, WorkloadSpec,
};

/// Drives a fresh [`SteppedSim`] to completion by hand over `backend`.
fn drive_stepped<S, B>(
    config: SimConfig,
    workload: &mut S,
    backend: &mut B,
    max_instructions: u64,
) -> SimResult
where
    S: InstructionStream + ?Sized,
    B: MemoryBackend + ?Sized,
{
    let mut core = SteppedSim::new(config);
    loop {
        match core.next_event(workload, max_instructions) {
            StepEvent::DemandRead { line_addr, at } => {
                let done = backend.request(line_addr, AccessKind::Read, at);
                core.resume(done);
            }
            StepEvent::Writeback { line_addr, at } => {
                backend.request(line_addr, AccessKind::Write, at);
            }
            StepEvent::Finished => break,
        }
    }
    core.into_result(backend)
}

fn windowed_config() -> SimConfig {
    SimConfig {
        window_instructions: Some(5_000),
        ..SimConfig::default()
    }
}

fn assert_equiv_dram(mk_workload: &dyn Fn() -> SyntheticWorkload, n: u64, label: &str) {
    let cfg = windowed_config();
    let blocking = {
        let mut wl = mk_workload();
        let mut backend = DramBackend::new();
        Simulator::new(cfg).run(&mut wl, &mut backend, n)
    };
    let stepped = {
        let mut wl = mk_workload();
        let mut backend = DramBackend::new();
        drive_stepped(cfg, &mut wl, &mut backend, n)
    };
    assert_eq!(blocking, stepped, "{label}: stepped run diverged over DRAM");
    assert_eq!(blocking.instructions, n, "{label}: short run");
    assert!(!blocking.windows.is_empty(), "{label}: no window samples");
}

fn assert_equiv_oram(
    mk_workload: &dyn Fn() -> SyntheticWorkload,
    policy: RatePolicy,
    n: u64,
    label: &str,
) {
    let cfg = windowed_config();
    let mk_backend = || {
        RateLimitedOramBackend::new(OramConfig::small(), &DdrConfig::default(), policy.clone())
            .expect("valid ORAM config")
    };
    let blocking = {
        let mut wl = mk_workload();
        let mut backend = mk_backend();
        Simulator::new(cfg).run(&mut wl, &mut backend, n)
    };
    let stepped = {
        let mut wl = mk_workload();
        let mut backend = mk_backend();
        drive_stepped(cfg, &mut wl, &mut backend, n)
    };
    assert_eq!(blocking, stepped, "{label}: stepped run diverged over ORAM");
}

#[test]
fn every_spec_benchmark_is_equivalent_over_dram() {
    let all = [
        SpecBenchmark::Mcf,
        SpecBenchmark::Omnetpp,
        SpecBenchmark::Libquantum,
        SpecBenchmark::Bzip2,
        SpecBenchmark::Hmmer,
        SpecBenchmark::AstarRivers,
        SpecBenchmark::AstarBigLakes,
        SpecBenchmark::Gcc,
        SpecBenchmark::Gobmk,
        SpecBenchmark::Sjeng,
        SpecBenchmark::H264ref,
        SpecBenchmark::PerlbenchDiffmail,
        SpecBenchmark::PerlbenchSplitmail,
    ];
    for bench in all {
        let n = 40_000;
        assert_equiv_dram(&|| bench.workload(n), n, bench.full_name());
    }
}

#[test]
fn memory_and_compute_benchmarks_are_equivalent_over_rate_limited_oram() {
    // The rate-limited backend is queue-stateful (slot grid + FIFO), so
    // any protocol drift shows up as shifted completions immediately.
    for bench in [SpecBenchmark::Mcf, SpecBenchmark::Hmmer] {
        let n = 15_000;
        assert_equiv_oram(
            &|| bench.workload(n),
            RatePolicy::Static { rate: 500 },
            n,
            bench.full_name(),
        );
        assert_equiv_oram(
            &|| bench.workload(n),
            RatePolicy::dynamic_paper(4, 4),
            n,
            bench.full_name(),
        );
    }
}

/// A seeded synthetic mix that isn't any single SpecBenchmark: two
/// phases, memory-heavy streaming then int-heavy pointer chasing.
fn seeded_mix(seed: u64, n: u64) -> SyntheticWorkload {
    WorkloadSpec {
        name: "seeded-mix".into(),
        phases: vec![
            PhaseSpec {
                mix: InstructionMix::memory_heavy(),
                pattern: AddressPattern::Streaming {
                    footprint: 16 << 20,
                    stride: 8,
                },
                fraction: 0.5,
            },
            PhaseSpec {
                mix: InstructionMix::int_heavy(),
                pattern: AddressPattern::HotCold {
                    hot: 24 << 10,
                    cold: 8 << 20,
                    hot_percent: 70,
                },
                fraction: 0.5,
            },
        ],
        code_bytes: 32 << 10,
        branch_every: 7,
        nominal_instructions: n,
        seed,
    }
    .build()
}

#[test]
fn seeded_synthetic_mix_is_equivalent_over_both_backends() {
    for seed in [0xDEAD_BEEF, 42, 0x07C0_57ED] {
        let n = 30_000;
        assert_equiv_dram(&|| seeded_mix(seed, n), n, "seeded-mix/dram");
        assert_equiv_oram(
            &|| seeded_mix(seed, 10_000),
            RatePolicy::Static { rate: 700 },
            10_000,
            "seeded-mix/oram",
        );
    }
}

/// Streams stores over 8 MB so the LLC spills dirty lines (nonzero
/// writebacks for the golden snapshot below).
struct StoreStream(u64);

impl InstructionStream for StoreStream {
    fn next_instr(&mut self) -> otc_sim::Instr {
        self.0 += 1;
        otc_sim::Instr::Store {
            addr: (self.0 % 131_072) * 64,
        }
    }
}

#[test]
fn golden_simresults_pin_timing_semantics() {
    // The equivalence tests above compare two entry points to the SAME
    // stepped core, so a semantic change to the core itself would slip
    // through them. These absolute values (recorded from the pre-refactor
    // blocking Machine) pin the Table 1 timing model: any change to
    // cache/stall/write-buffer arithmetic must show up here and be
    // justified explicitly.
    let run = |wl: &mut dyn InstructionStream, n: u64| {
        let mut backend = DramBackend::new();
        Simulator::new(SimConfig::default()).run(wl, &mut backend, n)
    };
    let mcf = run(&mut SpecBenchmark::Mcf.workload(40_000), 40_000);
    assert_eq!(
        (
            mcf.cycles,
            mcf.llc_demand_misses,
            mcf.load_stall_cycles,
            mcf.wb_stall_cycles
        ),
        (317_967, 5_677, 241_037, 170),
        "mcf golden drifted: {mcf:?}"
    );
    let hmmer = run(&mut SpecBenchmark::Hmmer.workload(40_000), 40_000);
    assert_eq!(
        (
            hmmer.cycles,
            hmmer.llc_demand_misses,
            hmmer.load_stall_cycles
        ),
        (179_585, 2_285, 101_962),
        "hmmer golden drifted: {hmmer:?}"
    );
    let stores = run(&mut StoreStream(0), 50_000);
    assert_eq!(
        (
            stores.cycles,
            stores.llc_demand_misses,
            stores.llc_writebacks,
            stores.wb_stall_cycles
        ),
        (2_861_141, 52_028, 34_586, 1_867_419),
        "store-stream golden drifted: {stores:?}"
    );
}

#[test]
fn warmed_then_churned_core_abandonment_leaves_survivor_untouched() {
    // The multi-tenant host's eviction path abandons a tenant's stepped
    // core wherever it stands — possibly suspended mid-DemandRead — and
    // keeps driving the survivors. This pins the suspend/resume
    // contract for that scenario on the core itself, warmed like a
    // production tenant: interleaving a warmed survivor with a doomed
    // co-core that is dropped while suspended must leave the survivor's
    // SimResult field-for-field identical to a solo blocking run.
    let bench = SpecBenchmark::Mcf;
    let doomed_bench = SpecBenchmark::Libquantum;
    let n = 30_000;
    let cfg = windowed_config();
    let sim = Simulator::new(cfg);

    let solo = {
        let mut wl = bench.workload(2 * n);
        let warm = sim.warm_caches(&mut wl, n);
        let mut backend = DramBackend::new();
        sim.run_warm(&mut wl, &mut backend, n, warm)
    };

    let churned = {
        let mut wl = bench.workload(2 * n);
        let warm = sim.warm_caches(&mut wl, n);
        let mut backend = DramBackend::new();
        let mut survivor = SteppedSim::warmed(cfg, warm);

        // The doomed co-tenant: its own warmed core and *its own*
        // backend (as in the host, where eviction never touches the
        // survivor's queue state — the shared-shard coupling is a host
        // concern; here we pin the core contract).
        let mut doomed_wl = doomed_bench.workload(2 * n);
        let doomed_warm = sim.warm_caches(&mut doomed_wl, n);
        let mut doomed_backend = DramBackend::new();
        let mut doomed = Some(SteppedSim::warmed(cfg, doomed_warm));
        let mut doomed_events = 0u64;

        loop {
            // Interleave: drive the doomed core one event per survivor
            // event until "eviction" at event 40 — at which point it is
            // REQUIRED to be suspended mid-DemandRead (we park it there
            // by never resuming), then dropped.
            if let Some(core) = doomed.as_mut() {
                if !core.awaiting_resume() {
                    match core.next_event(&mut doomed_wl, n) {
                        StepEvent::DemandRead { .. } => { /* stay suspended */ }
                        StepEvent::Writeback { line_addr, at } => {
                            doomed_backend.request(line_addr, AccessKind::Write, at);
                        }
                        StepEvent::Finished => panic!("doomed core finished too early"),
                    }
                }
                doomed_events += 1;
                if doomed_events == 40 {
                    let evicted = doomed.take().expect("present until eviction");
                    assert!(
                        evicted.awaiting_resume(),
                        "eviction must catch the core suspended mid-DemandRead"
                    );
                    drop(evicted);
                }
            }
            match survivor.next_event(&mut wl, n) {
                StepEvent::DemandRead { line_addr, at } => {
                    let done = backend.request(line_addr, AccessKind::Read, at);
                    survivor.resume(done);
                }
                StepEvent::Writeback { line_addr, at } => {
                    backend.request(line_addr, AccessKind::Write, at);
                }
                StepEvent::Finished => break,
            }
        }
        survivor.into_result(&mut backend)
    };
    assert_eq!(
        solo, churned,
        "abandoning a suspended co-core perturbed the survivor"
    );
}

#[test]
fn warmed_runs_are_equivalent() {
    // The warm path too: blocking run_warm vs a SteppedSim::warmed drive
    // must agree, with the warm state produced by the same fast-forward.
    let bench = SpecBenchmark::Mcf;
    let n = 30_000;
    let cfg = windowed_config();
    let sim = Simulator::new(cfg);

    let blocking = {
        let mut wl = bench.workload(2 * n);
        let warm = sim.warm_caches(&mut wl, n);
        let mut backend = DramBackend::new();
        sim.run_warm(&mut wl, &mut backend, n, warm)
    };
    let stepped = {
        let mut wl = bench.workload(2 * n);
        let warm = sim.warm_caches(&mut wl, n);
        let mut backend = DramBackend::new();
        let mut core = SteppedSim::warmed(cfg, warm);
        loop {
            match core.next_event(&mut wl, n) {
                StepEvent::DemandRead { line_addr, at } => {
                    let done = backend.request(line_addr, AccessKind::Read, at);
                    core.resume(done);
                }
                StepEvent::Writeback { line_addr, at } => {
                    backend.request(line_addr, AccessKind::Write, at);
                }
                StepEvent::Finished => break,
            }
        }
        core.into_result(&mut backend)
    };
    assert_eq!(blocking, stepped, "warmed stepped run diverged");
}
