//! Cross-crate integration: the performance/power orderings the paper's
//! evaluation depends on hold end-to-end through the full stack
//! (workload → core+caches → rate enforcer → Path ORAM → DRAM model →
//! power model).

use oram_timing::prelude::*;

struct Run {
    cycles: Cycle,
    power_w: f64,
}

fn run(scheme: &Scheme, bench: SpecBenchmark, instructions: u64) -> Run {
    let oram_cfg = OramConfig::paper();
    let ddr = DdrConfig::default();
    let timing = OramTiming::derive(&oram_cfg, &ddr);
    let power_model =
        PowerModel::paper().with_oram_access(timing.chunks_per_access(), timing.dram_cycles);
    // Fast-forward to warm the caches (paper methodology, §9.1.1), then
    // measure the steady state.
    let mut wl = bench.workload(2 * instructions);
    let sim = Simulator::new(SimConfig::default());
    let warm = sim.warm_caches(&mut wl, instructions);
    let mut backend = scheme.build_backend(&oram_cfg, &ddr).expect("valid");
    let stats = sim.run_warm(&mut wl, &mut *backend, instructions, warm);
    Run {
        cycles: stats.cycles,
        power_w: power_model.power(&stats).total_watts(),
    }
}

#[test]
fn oram_costs_more_than_dram_everywhere() {
    for bench in [SpecBenchmark::Mcf, SpecBenchmark::Hmmer] {
        let dram = run(&Scheme::BaseDram, bench, 100_000);
        let oram = run(&Scheme::BaseOram, bench, 100_000);
        assert!(
            oram.cycles > dram.cycles,
            "{}: ORAM should be slower",
            bench.full_name()
        );
        assert!(oram.power_w > dram.power_w);
    }
}

#[test]
fn unprotected_oram_is_a_performance_oracle_for_memory_bound() {
    // base_oram serves misses immediately; any rate enforcement can only
    // delay them. (§9.1.6 calls base_oram "a power/performance oracle".)
    let bench = SpecBenchmark::Mcf;
    let oracle = run(&Scheme::BaseOram, bench, 100_000);
    for scheme in [
        Scheme::Static { rate: 300 },
        Scheme::Static { rate: 1300 },
        Scheme::dynamic(4, 4),
    ] {
        let r = run(&scheme, bench, 100_000);
        assert!(
            r.cycles >= oracle.cycles,
            "{} beat the oracle: {} < {}",
            scheme.label(),
            r.cycles,
            oracle.cycles
        );
    }
}

#[test]
fn slower_static_rates_cost_performance_on_memory_bound() {
    let bench = SpecBenchmark::Mcf;
    let fast = run(&Scheme::Static { rate: 300 }, bench, 80_000);
    let slow = run(&Scheme::Static { rate: 4_096 }, bench, 80_000);
    assert!(slow.cycles > fast.cycles);
    // …and save power (fewer dummy accesses per unit time).
    assert!(slow.power_w < fast.power_w);
}

#[test]
fn fast_static_rate_wastes_power_on_compute_bound() {
    // hmmer barely needs ORAM; static_300 hammers dummies anyway.
    let bench = SpecBenchmark::Hmmer;
    let fast = run(&Scheme::Static { rate: 300 }, bench, 150_000);
    let slow = run(&Scheme::Static { rate: 32_768 }, bench, 150_000);
    assert!(
        fast.power_w > 1.5 * slow.power_w,
        "fast {} vs slow {}",
        fast.power_w,
        slow.power_w
    );
    // A slower rate never makes the program faster. (True flatness of the
    // compute-bound perf curve needs paper-length horizons; the fig5
    // bench demonstrates it with steady-state windows.)
    assert!(fast.cycles <= slow.cycles);
}

#[test]
fn dynamic_saves_power_vs_static300_on_compute_bound() {
    // The headline trade-off (§9.3): for low-pressure programs the
    // learner backs off to slow rates, unlike a fast static scheme.
    let bench = SpecBenchmark::Hmmer;
    let dynamic = run(&Scheme::dynamic(4, 2), bench, 200_000);
    let static300 = run(&Scheme::Static { rate: 300 }, bench, 200_000);
    assert!(
        dynamic.power_w < static300.power_w,
        "dynamic {} vs static_300 {}",
        dynamic.power_w,
        static300.power_w
    );
}
