//! End-to-end security properties, checked through the full simulator
//! (not just the enforcer in isolation): the observable ORAM-timing trace
//! reveals only what the paper's accounting says it can.

use oram_timing::attacks::traces_identical_prefix;
use oram_timing::prelude::*;

/// Runs a benchmark under a scheme, returning (slot trace, total cycles).
fn observable_trace(
    policy: RatePolicy,
    bench: SpecBenchmark,
    instructions: u64,
    seed_shift: u64,
) -> (Vec<SlotRecord>, Cycle) {
    let ddr = DdrConfig::default();
    let mut spec = bench.spec(instructions);
    spec.seed ^= seed_shift; // different "input data"
    let mut wl = spec.build();
    let mut backend =
        RateLimitedOramBackend::new(OramConfig::paper(), &ddr, policy).expect("valid");
    let stats = Simulator::new(SimConfig::default()).run(&mut wl, &mut backend, instructions);
    (backend.trace().to_vec(), stats.cycles)
}

#[test]
fn static_trace_is_input_independent_full_stack() {
    // Same program, two different inputs (seeds): under a static rate the
    // observable timelines must agree on their common prefix.
    let (ta, ea) = observable_trace(
        RatePolicy::Static { rate: 700 },
        SpecBenchmark::Gcc,
        60_000,
        0,
    );
    let (tb, eb) = observable_trace(
        RatePolicy::Static { rate: 700 },
        SpecBenchmark::Gcc,
        60_000,
        0xDEAD,
    );
    let horizon = ea.min(eb);
    let pa: Vec<&SlotRecord> = ta.iter().filter(|s| s.start < horizon).collect();
    let pb: Vec<&SlotRecord> = tb.iter().filter(|s| s.start < horizon).collect();
    assert_eq!(pa.len(), pb.len());
    assert!(pa.iter().zip(pb.iter()).all(|(a, b)| a.start == b.start));
    assert!(!pa.is_empty());
}

#[test]
fn dynamic_trace_is_reconstructible_from_rate_choices() {
    // The adversary's entire view of a dynamic run is predictable from
    // (initial rate, per-epoch rate choices) — i.e. at most |R|^|E|
    // possibilities. Reconstruct and compare.
    let ddr = DdrConfig::default();
    let mut wl = SpecBenchmark::Mcf.workload(80_000);
    let mut backend = RateLimitedOramBackend::new(
        OramConfig::paper(),
        &ddr,
        RatePolicy::Dynamic {
            rates: RateSet::paper(4),
            schedule: EpochSchedule::new(17, 2, 40),
            divider: DividerImpl::ShiftRegister,
            initial_rate: 10_000,
        },
    )
    .expect("valid");
    let stats = Simulator::new(SimConfig::default()).run(&mut wl, &mut backend, 80_000);
    let olat = backend.olat();

    let mut rate = 10_000u64;
    let mut expected = Vec::new();
    let mut next = rate;
    let mut ti = 0;
    let transitions = backend.transitions();
    while expected.len() < backend.trace().len() {
        expected.push(next);
        let completion = next + olat;
        while ti < transitions.len() && completion >= transitions[ti].at {
            rate = transitions[ti].new_rate;
            ti += 1;
        }
        next = completion + rate;
    }
    let actual: Vec<Cycle> = backend.trace().iter().map(|s| s.start).collect();
    assert_eq!(actual, expected);
    assert!(stats.cycles > 0);
}

#[test]
fn dummy_slots_indistinguishable_in_trace_timing() {
    // Real and dummy slots sit on the same deterministic grid — the
    // real/dummy flag correlates with nothing observable.
    // Long enough that cache warmup finishes and idle slots (dummies)
    // appear after the real-request burst.
    let (trace, _) = observable_trace(
        RatePolicy::Static { rate: 512 },
        SpecBenchmark::Hmmer,
        250_000,
        0,
    );
    let period = 512 + OramTiming::derive(&OramConfig::paper(), &DdrConfig::default()).latency;
    for (k, slot) in trace.iter().enumerate() {
        assert_eq!(slot.start, 512 + k as u64 * period);
    }
    // Both kinds occur.
    assert!(trace.iter().any(|s| s.real));
    assert!(trace.iter().any(|s| !s.real));
}

#[test]
fn distinct_workloads_identical_static_traces() {
    // Even completely different *programs* produce the same static-rate
    // timeline (leakage bound holds for any program, §2).
    let (ta, ea) = observable_trace(
        RatePolicy::Static { rate: 900 },
        SpecBenchmark::Hmmer,
        50_000,
        0,
    );
    let (tb, eb) = observable_trace(
        RatePolicy::Static { rate: 900 },
        SpecBenchmark::Mcf,
        50_000,
        0,
    );
    let horizon = ea.min(eb);
    let pa: Vec<SlotRecord> = ta.into_iter().filter(|s| s.start < horizon).collect();
    let pb: Vec<SlotRecord> = tb.into_iter().filter(|s| s.start < horizon).collect();
    assert!(traces_identical_prefix(&pa, &pb));
}

#[test]
fn leakage_bounds_scale_as_documented() {
    // |R|^|E| accounting: observed distinct-rate choices can never exceed
    // the budget.
    let scheme = Scheme::dynamic(4, 4);
    let bits = scheme.oram_timing_leakage_bits();
    assert_eq!(bits, 32.0);
    // A run can only reveal as many choices as epochs it crossed.
    let model = LeakageModel::new(4, EpochSchedule::scaled(4));
    assert!(model.oram_timing_bits_by(1 << 21) <= bits);
}
