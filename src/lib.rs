//! # oram-timing
//!
//! A from-scratch Rust reproduction of **"Suppressing the Oblivious RAM
//! Timing Channel While Making Information Leakage and Program Efficiency
//! Trade-offs"** (Fletcher, Ren, Yu, van Dijk, Khan, Devadas — HPCA 2014).
//!
//! Secure processors that fetch cache lines through Path ORAM hide *what*
//! they access but not *when*; the access-rate timeline tracks program
//! locality and can be read out of shared DRAM by software (§3.2 of the
//! paper). This workspace implements the paper's answer — a
//! leakage-*bounded* dynamic ORAM rate controller — together with every
//! substrate it needs, and a benchmark suite regenerating every table and
//! figure of the paper's evaluation.
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`core`](otc_core) | **The contribution**: epoch schedules, candidate rate sets, the Equation-1 rate learner with the Algorithm-1 shift divider, the slot-periodic rate enforcer with dummy accesses, information-theoretic leakage accounting, and the §5/§8 session protocol |
//! | [`oram`](otc_oram) | Path ORAM: tree + stash + recursive position maps, probabilistic bucket encryption, access timing |
//! | [`host`](otc_host) | **Beyond the paper**: the multi-tenant serving layer — sharded ORAM backends, batched slot scheduling over per-tenant `SlotStream`s, a tenant directory with session-authorized leakage budgets, and the fleet-wide `LeakageLedger` (drive it with the `otc` CLI) |
//! | [`perf`](otc_perf) | Structured perf sessions: per-round sample schema, framed + footer-indexed binary trace format, exact-percentile histograms, and the `otc report` timeline renderer |
//! | [`sim`](otc_sim) | Cycle-level in-order processor (Table 1): caches, write buffer, pluggable memory backends |
//! | [`dram`](otc_dram) | DRAM timing: flat-latency baseline + calibrated DDR3-like channel model |
//! | [`workloads`](otc_workloads) | Synthetic SPEC-int stand-ins with per-input variants |
//! | [`power`](otc_power) | The Table 2 energy model (984 nJ per ORAM access) |
//! | [`crypto`](otc_crypto) | Simulation-grade fixed-latency primitives, session keys |
//! | [`attacks`](otc_attacks) | Executable adversaries: Fig. 1(a)'s malicious program + decoder, the §3.2 root-bucket probe, replay attacks |
//!
//! ## Quickstart
//!
//! ```
//! use oram_timing::prelude::*;
//!
//! // The paper's headline configuration: |R| = 4 rates, epochs grow 4x,
//! // leaking at most 32 bits over the ORAM timing channel.
//! let scheme = Scheme::dynamic(4, 4);
//! assert_eq!(scheme.oram_timing_leakage_bits(), 32.0);
//!
//! // Run a memory-bound workload through the full stack.
//! let mut workload = SpecBenchmark::Mcf.workload(50_000);
//! let mut backend = scheme
//!     .build_backend(&OramConfig::small(), &DdrConfig::default())
//!     .expect("valid configuration");
//! let stats = Simulator::new(SimConfig::default())
//!     .run(&mut workload, &mut *backend, 50_000);
//! assert_eq!(stats.instructions, 50_000);
//! ```
//!
//! See `examples/` for runnable scenarios (quickstart, the timing attack
//! and its defeat, leakage budgeting, replay attacks, phase adaptation)
//! and `crates/bench/benches/` for the per-figure reproductions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use otc_attacks as attacks;
pub use otc_core as core;
pub use otc_crypto as crypto;
pub use otc_dram as dram;
pub use otc_host as host;
pub use otc_oram as oram;
pub use otc_perf as perf;
pub use otc_power as power;
pub use otc_sim as sim;
pub use otc_workloads as workloads;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use otc_attacks::{
        decode_trace, recovery_accuracy, MaliciousProgram, ReplayAttacker, RootBucketProbe,
    };
    pub use otc_core::{
        DividerImpl, EpochSchedule, LeakageModel, LeakageParams, PerfCounters,
        RateLimitedOramBackend, RatePolicy, RatePredictor, RateSet, Scheme, SecureProcessor,
        SlotRecord, UnprotectedOramBackend, UserSession,
    };
    pub use otc_crypto::{SplitMix64, SymmetricKey};
    pub use otc_dram::{Cycle, DdrConfig, FlatDram, TransferSpec};
    pub use otc_host::{
        HostConfig, LeakageLedger, LoopMode, MultiTenantHost, ShardedOram, TenantSpec,
    };
    pub use otc_oram::{OramConfig, OramTiming, RecursivePathOram};
    pub use otc_power::{PowerModel, PowerReport};
    pub use otc_sim::{
        DramBackend, Instr, InstructionStream, MemoryBackend, SimConfig, SimStats, Simulator,
        StepEvent, SteppedSim,
    };
    pub use otc_workloads::{AddressPattern, InstructionMix, SpecBenchmark, WorkloadSpec};
}
