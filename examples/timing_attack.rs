//! The Fig. 1(a) timing attack, end to end: a malicious program encodes a
//! secret into its LLC-miss pattern; the server-side adversary watches the
//! ORAM access times (which it can obtain with the §3.2 root-bucket probe)
//! and decodes.
//!
//! Run against an unprotected ORAM the attack recovers every bit; against
//! the rate-enforced controller the observable trace is independent of
//! the secret.
//!
//! ```text
//! cargo run --release --example timing_attack
//! ```

use oram_timing::prelude::*;

fn random_bits(n: usize, seed: u64) -> Vec<bool> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_below(2) == 1).collect()
}

fn show(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

fn main() {
    let secret = random_bits(32, 0xACCE55);
    let sim = Simulator::new(SimConfig::default());
    let ddr = DdrConfig::default();
    let oram_cfg = OramConfig::paper();

    println!("secret:           {}", show(&secret));

    // --- Offline calibration (the program is public). ---
    let profile = |bits: Vec<bool>| {
        let mut cal = MaliciousProgram::new(bits);
        let mut backend =
            UnprotectedOramBackend::new(oram_cfg.clone(), &ddr).expect("valid config");
        sim.run(&mut cal, &mut backend, u64::MAX).cycles
    };
    let prologue = profile(vec![]);
    let zero_window = (profile(vec![false; 8]) - prologue) / 8;

    // --- Attack vs base_oram. ---
    let mut p1 = MaliciousProgram::new(secret.clone());
    let mut backend = UnprotectedOramBackend::new(oram_cfg.clone(), &ddr).expect("valid config");
    let stats = sim.run(&mut p1, &mut backend, u64::MAX);
    let decoded = decode_trace(
        backend.trace(),
        backend.olat(),
        p1.loads_per_one(),
        zero_window,
        prologue,
        stats.cycles,
    );
    println!(
        "base_oram decode: {}",
        show(&decoded[..decoded.len().min(32)])
    );
    println!(
        "                  -> {:.0}% of the secret recovered from access times alone",
        recovery_accuracy(&secret, &decoded) * 100.0
    );

    // --- Same attack vs the dynamic leakage-bounded controller. ---
    let run_protected = |bits: Vec<bool>| {
        let mut p1 = MaliciousProgram::new(bits);
        let mut backend =
            RateLimitedOramBackend::new(oram_cfg.clone(), &ddr, RatePolicy::dynamic_paper(4, 4))
                .expect("valid config");
        let stats = sim.run(&mut p1, &mut backend, u64::MAX);
        let trace: Vec<Cycle> = backend.trace().iter().map(|s| s.start).collect();
        (trace, stats.cycles)
    };
    let (trace_a, end_a) = run_protected(secret.clone());
    let (trace_b, end_b) = run_protected(random_bits(32, 0xB17B17));
    let horizon = end_a.min(end_b);
    let pa: Vec<Cycle> = trace_a.into_iter().filter(|&t| t < horizon).collect();
    let pb: Vec<Cycle> = trace_b.into_iter().filter(|&t| t < horizon).collect();
    println!(
        "\ndynamic_R4_E4:    traces for two different secrets identical up to min \
         termination: {}",
        pa == pb
    );
    println!(
        "                  (worst case {} bits can differ via per-epoch rate choices; \
         this short run crossed no boundary where they did)",
        Scheme::dynamic(4, 4).oram_timing_leakage_bits()
    );
}
