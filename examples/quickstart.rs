//! Quickstart: run a workload through the full secure-processor stack
//! under each of the paper's schemes and compare performance, power and
//! leakage.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use oram_timing::prelude::*;

fn main() {
    let instructions = 400_000;
    let oram_config = OramConfig::paper();
    let ddr = DdrConfig::default();
    let timing = OramTiming::derive(&oram_config, &ddr);
    let power_model =
        PowerModel::paper().with_oram_access(timing.chunks_per_access(), timing.dram_cycles);

    println!(
        "ORAM access: {} cycles, {} bytes over the pins",
        timing.latency, timing.transfer.bytes
    );
    println!("running omnetpp for {instructions} instructions under each scheme:\n");
    println!(
        "{:<16} {:>8} {:>10} {:>10} {:>12}",
        "scheme", "IPC", "power(W)", "dummy%", "leakage(bits)"
    );

    let schemes = [
        Scheme::BaseDram,
        Scheme::BaseOram,
        Scheme::Static { rate: 1300 },
        Scheme::dynamic(4, 4),
    ];

    for scheme in schemes {
        let mut workload = SpecBenchmark::Omnetpp.workload(instructions);
        let mut backend = scheme
            .build_backend(&oram_config, &ddr)
            .expect("valid configuration");
        let stats =
            Simulator::new(SimConfig::default()).run(&mut workload, &mut *backend, instructions);
        let power = power_model.power(&stats);
        let dummy_pct = {
            let p = backend.energy_profile();
            if p.oram_accesses == 0 {
                0.0
            } else {
                100.0 * p.oram_dummy_accesses as f64 / p.oram_accesses as f64
            }
        };
        let leakage = scheme.oram_timing_leakage_bits();
        println!(
            "{:<16} {:>8.4} {:>10.3} {:>9.0}% {:>12}",
            scheme.label(),
            stats.ipc(),
            power.total_watts(),
            dummy_pct,
            if leakage.is_infinite() {
                "unbounded".to_string()
            } else {
                format!("{leakage:.0}")
            },
        );
    }

    println!(
        "\nThe dynamic scheme sits between the insecure oracle (base_oram) and the \
         zero-leakage static point, at a provable {}-bit ORAM-timing budget \
         (+62 bits of early-termination leakage common to all schemes).",
        Scheme::dynamic(4, 4).oram_timing_leakage_bits()
    );
}
