//! Phase adaptation: watch the rate learner follow a program through a
//! compute-bound -> memory-bound transition (the h264ref story of Fig. 7
//! and §9.4).
//!
//! ```text
//! cargo run --release --example phase_adaptive
//! ```

use oram_timing::prelude::*;

fn main() {
    let instructions = 2_000_000;
    let oram_cfg = OramConfig::paper();
    let ddr = DdrConfig::default();

    // h264ref-like: compute-bound for 65% of the run, then streaming far
    // beyond the LLC.
    let mut workload = SpecBenchmark::H264ref.workload(instructions);

    let sim_cfg = SimConfig {
        window_instructions: Some(instructions / 16),
        ..SimConfig::default()
    };
    let sim = Simulator::new(sim_cfg);

    // Fast-forward to warm the caches (the paper fast-forwards billions of
    // instructions before measuring, §9.1.1).
    let warm = sim.warm_caches(&mut workload, 500_000);

    let mut backend = RateLimitedOramBackend::new(oram_cfg, &ddr, RatePolicy::dynamic_paper(4, 2))
        .expect("valid config");
    let stats = sim.run_warm(&mut workload, &mut backend, instructions, warm);

    println!("h264ref under dynamic_R4_E2, {instructions} instructions\n");
    println!("windowed IPC:");
    let mut prev = (0u64, 0u64);
    for (i, w) in stats.windows.iter().enumerate() {
        let di = w.instructions - prev.0;
        let dc = w.cycle - prev.1;
        prev = (w.instructions, w.cycle);
        let ipc = di as f64 / dc.max(1) as f64;
        let bar_len = (ipc * 150.0) as usize;
        println!(
            "  w{:<3} {:>7.3} {}",
            i + 1,
            ipc,
            "#".repeat(bar_len.min(60))
        );
    }

    println!("\nepoch transitions (learner decisions):");
    for t in backend.transitions() {
        println!(
            "  epoch {:>2} ended at cycle {:>12}: raw prediction {:>12} -> rate {}",
            t.epoch + 1,
            t.at,
            t.raw_prediction,
            t.new_rate
        );
    }
    println!(
        "\ndummy fraction: {:.0}% of {} enforced slots",
        backend.dummy_fraction() * 100.0,
        backend.slots_served()
    );
    println!(
        "\nThe learner idles at the slowest rate (32768) during the compute phase, \
         then switches to a fast rate at the first epoch transition after the \
         memory-bound phase begins — the paper's Fig. 7 (bottom) behaviour."
    );
}
