//! Replay attacks and their prevention (§8), plus the broken
//! determinism-based alternative (§8.1).
//!
//! ```text
//! cargo run --release --example replay_attack
//! ```

use oram_timing::attacks::{demonstrate_broken_determinism, session_fixture};
use oram_timing::prelude::*;

fn main() {
    // --- The threat: N replays leak N*L bits. ---
    let (mut processor, _user, encrypted) = session_fixture(42, 64, b"the user's secret input");
    let attacker = ReplayAttacker::new();

    println!("== Without key forgetting (hypothetical vulnerable design) ==");
    let outcome = attacker.run(&mut processor, &encrypted, false);
    println!(
        "replays executed: {}; worst-case bits obtainable: {} (= L x N, §4.3)",
        outcome.successful_runs, outcome.bits_obtainable
    );

    // --- The defense: run-once session keys. ---
    let (mut processor, _user, encrypted) = session_fixture(43, 64, b"the user's secret input");
    println!("\n== With §8's run-once session key ==");
    let outcome = attacker.run(&mut processor, &encrypted, true);
    println!(
        "replays executed: {}; bits obtainable: {}; stopped by: {}",
        outcome.successful_runs,
        outcome.bits_obtainable,
        outcome
            .stopped_by
            .map(|e| e.to_string())
            .unwrap_or_else(|| "nothing".into())
    );
    println!("the session key register was reset -> encrypt_K(D) is undecryptable, replays die");

    // --- §8.1: why HMAC-bound deterministic re-execution does NOT work. ---
    println!("\n== §8.1: the broken alternative ==");
    let (clean, jittered) = demonstrate_broken_determinism(800);
    println!("rate choices, run 1 (quiet bus):     {clean:?}");
    println!("rate choices, run 2 (contended bus): {jittered:?}");
    println!(
        "identical program + data + parameters, yet the traces {} — memory-bus \
         timing noise steers the rate learner, so \"deterministic replay\" leaks \
         fresh bits per run.",
        if clean == jittered {
            "matched (increase jitter!)"
        } else {
            "DIVERGE"
        }
    );
}
