//! Leakage budgeting: how `|R|` and the epoch growth factor trade leakage
//! against program efficiency (the paper's central knob, §2 and §9.5).
//!
//! Prints, for a grid of configurations, the provable worst-case bit
//! leakage and the measured performance/power of a representative
//! memory-bound workload.
//!
//! ```text
//! cargo run --release --example leakage_budget
//! ```

use oram_timing::prelude::*;

fn main() {
    let instructions = 600_000;
    let oram_config = OramConfig::paper();
    let ddr = DdrConfig::default();
    let timing = OramTiming::derive(&oram_config, &ddr);
    let power_model =
        PowerModel::paper().with_oram_access(timing.chunks_per_access(), timing.dram_cycles);

    // Normalizer (caches fast-forwarded first, as the paper does).
    let sim = Simulator::new(SimConfig::default());
    let mut wl = SpecBenchmark::Omnetpp.workload(2 * instructions);
    let warm = sim.warm_caches(&mut wl, instructions);
    let mut dram = DramBackend::new();
    let base = sim.run_warm(&mut wl, &mut dram, instructions, warm);

    println!("workload: omnetpp, {instructions} instructions; overheads vs base_dram\n");
    println!(
        "{:<18} {:>14} {:>12} {:>12}",
        "scheme", "leakage(bits)", "perf(x)", "power(W)"
    );

    for (rate_count, growth) in [
        (2usize, 2u32),
        (4, 2),
        (8, 2),
        (16, 2),
        (4, 4),
        (4, 8),
        (4, 16),
    ] {
        let scheme = Scheme::dynamic(rate_count, growth);
        let mut wl = SpecBenchmark::Omnetpp.workload(2 * instructions);
        let warm = sim.warm_caches(&mut wl, instructions);
        let mut backend = scheme
            .build_backend(&oram_config, &ddr)
            .expect("valid configuration");
        let stats = sim.run_warm(&mut wl, &mut *backend, instructions, warm);
        let power = power_model.power(&stats);
        println!(
            "{:<18} {:>14.0} {:>12.2} {:>12.3}",
            scheme.label(),
            scheme.oram_timing_leakage_bits(),
            stats.cycles as f64 / base.cycles as f64,
            power.total_watts()
        );
    }

    println!(
        "\nEvery row is a provable bound: an adversary with perfect timing \
         measurement learns at most that many bits of the user's input, \
         regardless of which program runs (§2). The early-termination channel \
         adds lg Tmax = 62 bits to every scheme (§9.1.5), reducible by runtime \
         discretization (§6)."
    );

    // Show the §6 discretization arithmetic too.
    let model = LeakageModel::new(4, EpochSchedule::paper(4));
    println!(
        "\ntermination leakage: {} bits raw; {} bits if runtime is rounded up to 2^30 cycles",
        model.termination_bits(),
        LeakageModel::new(4, EpochSchedule::paper(4))
            .with_termination_discretization(30)
            .termination_bits()
    );
}
